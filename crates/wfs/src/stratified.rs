//! Stratified negation: the baseline semantics of Calì–Gottlob–Lukasiewicz
//! \[1\] that the paper generalizes.
//!
//! A program is *stratified* when its predicate dependency graph has no
//! negative edge inside a strongly connected component. Stratified programs
//! have a canonical (perfect) model computed by an iterated least fixpoint
//! along the strata — and the WFS coincides with it (every atom decided).
//! That coincidence is one of the workspace's main cross-validation
//! properties (experiment E8).

use wfdl_core::{FxHashMap, Interp, PredId, SkolemProgram, Universe};
use wfdl_storage::GroundProgram;

/// A stratification: a stratum index per predicate, with
/// `stratum(head) ≥ stratum(positive dep)` and
/// `stratum(head) > stratum(negative dep)`.
#[derive(Clone, Debug)]
pub struct Stratification {
    stratum_of: FxHashMap<PredId, u32>,
    /// Number of strata.
    pub num_strata: u32,
}

impl Stratification {
    /// The stratum of a predicate (predicates never mentioned get 0).
    pub fn stratum(&self, pred: PredId) -> u32 {
        self.stratum_of.get(&pred).copied().unwrap_or(0)
    }
}

/// Computes a stratification of the (non-ground) program, or `None` if the
/// program is not stratifiable (a negative edge occurs within an SCC of the
/// predicate dependency graph).
pub fn stratify(program: &SkolemProgram) -> Option<Stratification> {
    // Collect predicates and edges head -> body (polarity flagged).
    let mut preds: Vec<PredId> = Vec::new();
    let mut index: FxHashMap<PredId, usize> = FxHashMap::default();
    let touch = |p: PredId, preds: &mut Vec<PredId>, index: &mut FxHashMap<PredId, usize>| {
        *index.entry(p).or_insert_with(|| {
            preds.push(p);
            preds.len() - 1
        })
    };
    let mut edges: Vec<(usize, usize, bool)> = Vec::new(); // (head, dep, negative?)
    for rule in &program.rules {
        let h = touch(rule.head_pred, &mut preds, &mut index);
        for a in &rule.body_pos {
            let b = touch(a.pred, &mut preds, &mut index);
            edges.push((h, b, false));
        }
        for a in &rule.body_neg {
            let b = touch(a.pred, &mut preds, &mut index);
            edges.push((h, b, true));
        }
    }
    let n = preds.len();
    let mut fwd = vec![Vec::new(); n]; // head -> dep
    for &(h, b, neg) in &edges {
        fwd[h].push((b, neg));
    }

    let comp = scc(n, &fwd);
    // Reject negative edges within a component.
    for &(h, b, neg) in &edges {
        if neg && comp[h] == comp[b] {
            return None;
        }
    }

    // Strata via longest negative-edge path over the condensation. The
    // dependency condensation is a DAG; iterate to fixpoint (at most
    // n rounds; tiny in practice since predicates are few).
    let num_comps = comp.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut stratum = vec![0u32; num_comps];
    let mut changed = true;
    while changed {
        changed = false;
        for &(h, b, neg) in &edges {
            let need = stratum[comp[b]] + u32::from(neg);
            if stratum[comp[h]] < need {
                stratum[comp[h]] = need;
                changed = true;
            }
        }
    }

    let mut stratum_of = FxHashMap::default();
    for (i, &p) in preds.iter().enumerate() {
        stratum_of.insert(p, stratum[comp[i]]);
    }
    let num_strata = stratum.iter().copied().max().unwrap_or(0) + 1;
    Some(Stratification {
        stratum_of,
        num_strata,
    })
}

/// Kosaraju SCC over adjacency `fwd` (edges annotated, polarity ignored).
fn scc(n: usize, fwd: &[Vec<(usize, bool)>]) -> Vec<usize> {
    let mut rev = vec![Vec::new(); n];
    for (u, outs) in fwd.iter().enumerate() {
        for &(v, _) in outs {
            rev[v].push(u);
        }
    }
    // First pass: finish order on fwd.
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for s in 0..n {
        if visited[s] {
            continue;
        }
        // Iterative DFS with explicit post-order.
        let mut stack = vec![(s, 0usize)];
        visited[s] = true;
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            if *next < fwd[u].len() {
                let (v, _) = fwd[u][*next];
                *next += 1;
                if !visited[v] {
                    visited[v] = true;
                    stack.push((v, 0));
                }
            } else {
                order.push(u);
                stack.pop();
            }
        }
    }
    // Second pass: reverse graph in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut c = 0usize;
    for &s in order.iter().rev() {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        comp[s] = c;
        while let Some(u) = stack.pop() {
            for &v in &rev[u] {
                if comp[v] == usize::MAX {
                    comp[v] = c;
                    stack.push(v);
                }
            }
        }
        c += 1;
    }
    comp
}

/// Evaluates the perfect (iterated least fixpoint) model of a ground
/// program under a stratification. The result is total on the program's
/// atoms: derived atoms are true, everything else false.
pub fn perfect_model(
    universe: &Universe,
    ground: &GroundProgram,
    strat: &Stratification,
) -> Interp {
    let mut interp = Interp::new();
    let mut derived: Vec<bool> = Vec::new(); // by dense order of ground.atoms()
    let mut index: FxHashMap<wfdl_core::AtomId, usize> = FxHashMap::default();
    for (i, &a) in ground.atoms().iter().enumerate() {
        index.insert(a, i);
        derived.push(false);
    }
    let mark = |a: wfdl_core::AtomId, derived: &mut Vec<bool>, index: &FxHashMap<_, usize>| {
        derived[index[&a]] = true;
    };
    for &f in ground.facts() {
        mark(f, &mut derived, &index);
    }

    // Materialize the rules once (cold path: the WFS engines carry the
    // optimized machinery; this baseline favours clarity).
    let all_rules: Vec<_> = ground.rules().collect();
    for s in 0..strat.num_strata {
        // Rules of this stratum.
        let rules: Vec<usize> = all_rules
            .iter()
            .enumerate()
            .filter(|(_, r)| strat.stratum(universe.atoms.pred(r.head)) == s)
            .map(|(i, _)| i)
            .collect();
        // Naive per-stratum closure (rule sets per stratum are small in the
        // workloads).
        let mut changed = true;
        while changed {
            changed = false;
            for &ri in &rules {
                let rule = &all_rules[ri];
                if derived[index[&rule.head]] {
                    continue;
                }
                let pos_ok = rule.pos.iter().all(|b| derived[index[b]]);
                // Negative deps are in strictly lower strata: final.
                let neg_ok = rule.neg.iter().all(|b| !derived[index[b]]);
                if pos_ok && neg_ok {
                    mark(rule.head, &mut derived, &index);
                    changed = true;
                }
            }
        }
    }

    for (i, &a) in ground.atoms().iter().enumerate() {
        if derived[i] {
            interp.set_true(a);
        } else {
            interp.set_false(a);
        }
    }
    interp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wp::{StepMode, WpEngine};
    use wfdl_core::{Program, RTerm, RuleAtom, Tgd, Truth, Var};
    use wfdl_storage::Database;

    fn v(i: u32) -> RTerm {
        RTerm::Var(Var::new(i))
    }

    fn build_stratified() -> (Universe, Database, SkolemProgram) {
        let mut u = Universe::new();
        let e = u.pred("e", 1).unwrap();
        let p = u.pred("p", 1).unwrap();
        let q = u.pred("q", 1).unwrap();
        let mut prog = Program::new();
        // e(X) -> p(X);  e(X), not p(X) -> q(X)  — wait, p depends on e
        // only, q negatively on p: stratified with p at 0, q at 1.
        prog.push(
            Tgd::new(
                &u,
                vec![RuleAtom::new(e, vec![v(0)])],
                vec![],
                vec![RuleAtom::new(p, vec![v(0)])],
            )
            .unwrap(),
        );
        prog.push(
            Tgd::new(
                &u,
                vec![RuleAtom::new(e, vec![v(0)])],
                vec![RuleAtom::new(p, vec![v(0)])],
                vec![RuleAtom::new(q, vec![v(0)])],
            )
            .unwrap(),
        );
        let sk = prog.skolemize(&mut u).unwrap();
        let mut db = Database::new();
        let c = u.constant("c");
        let ec = u.atom(e, vec![c]).unwrap();
        db.insert(&u, ec).unwrap();
        (u, db, sk)
    }

    #[test]
    fn stratification_found() {
        let (u, _db, sk) = build_stratified();
        let strat = stratify(&sk).expect("stratified");
        let p = u.lookup_pred("p").unwrap();
        let q = u.lookup_pred("q").unwrap();
        assert!(strat.stratum(q) > strat.stratum(p));
    }

    #[test]
    fn unstratifiable_detected() {
        let mut u = Universe::new();
        let p = u.pred("p", 1).unwrap();
        let q = u.pred("q", 1).unwrap();
        let g = u.pred("g", 1).unwrap();
        let mut prog = Program::new();
        // g(X), not q(X) -> p(X);  g(X), not p(X) -> q(X): odd loop.
        prog.push(
            Tgd::new(
                &u,
                vec![RuleAtom::new(g, vec![v(0)])],
                vec![RuleAtom::new(q, vec![v(0)])],
                vec![RuleAtom::new(p, vec![v(0)])],
            )
            .unwrap(),
        );
        prog.push(
            Tgd::new(
                &u,
                vec![RuleAtom::new(g, vec![v(0)])],
                vec![RuleAtom::new(p, vec![v(0)])],
                vec![RuleAtom::new(q, vec![v(0)])],
            )
            .unwrap(),
        );
        let sk = prog.skolemize(&mut u).unwrap();
        assert!(stratify(&sk).is_none());
    }

    #[test]
    fn perfect_model_matches_wfs_on_stratified_program() {
        let (mut u, db, sk) = build_stratified();
        let seg =
            wfdl_chase::ChaseSegment::build(&mut u, &db, &sk, wfdl_chase::ChaseBudget::unbounded());
        assert!(seg.complete);
        let ground = seg.to_ground_program();
        let strat = stratify(&sk).unwrap();
        let perfect = perfect_model(&u, &ground, &strat);
        let wfs = WpEngine::new(&ground).solve(StepMode::Accelerated);
        for &a in ground.atoms() {
            assert_eq!(perfect.value(a), wfs.value(a), "{:?}", a);
            assert!(!perfect.value(a).is_unknown(), "perfect model is total");
        }
        // q(c) is false: p(c) derived, blocking q's rule.
        let q = u.lookup_pred("q").unwrap();
        let c = u.lookup_constant("c").unwrap();
        let qc = u.atoms.lookup(q, &[c]).unwrap();
        assert_eq!(perfect.value(qc), Truth::False);
    }

    #[test]
    fn positive_program_is_stratum_zero() {
        let mut u = Universe::new();
        let p = u.pred("p", 1).unwrap();
        let q = u.pred("q", 1).unwrap();
        let mut prog = Program::new();
        prog.push(
            Tgd::new(
                &u,
                vec![RuleAtom::new(p, vec![v(0)])],
                vec![],
                vec![RuleAtom::new(q, vec![v(0)])],
            )
            .unwrap(),
        );
        let sk = prog.skolemize(&mut u).unwrap();
        let strat = stratify(&sk).unwrap();
        assert_eq!(strat.num_strata, 1);
    }
}
