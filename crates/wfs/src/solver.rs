//! The top-level solver: chase a segment, run a WFS engine, answer truth
//! queries — `WFS(D, Σ)` of Definition 3, with honest exactness reporting.

use crate::alternating::AlternatingEngine;
use crate::forward::ForwardEngine;
use crate::result::EngineResult;
use crate::scc::{ModularEngine, ModularStats};
use crate::wp::{StepMode, WpEngine};
use wfdl_chase::{ChaseBudget, ChaseSegment, ResumeError};
use wfdl_core::{
    AtomId, CoreError, Interp, PredId, Program, RuleAtom, SkolemProgram, SolveBudget, SolveOutcome,
    Tgd, TruncationReason, Truth, Universe,
};
use wfdl_storage::{Database, GroundProgram};

/// Which fixpoint engine computes the model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// SCC-condensation modular evaluation (default): negation-free
    /// components by a flat semi-naive pass, `W_P` only on components with
    /// internal negation. See [`crate::scc`].
    #[default]
    Modular,
    /// `W_P` with `T_P`-closure acceleration on the whole program.
    Wp,
    /// `W_P` stepped literally per the definition (stage-faithful, slower).
    WpLiteral,
    /// Van Gelder's alternating fixpoint.
    Alternating,
    /// The forward-proof operator `Ŵ_P` on the chase segment (Theorem 8).
    Forward,
}

/// Solver configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WfsOptions {
    /// Chase materialization limits.
    pub budget: ChaseBudget,
    /// Engine selection.
    pub engine: EngineKind,
    /// Worker threads for the chase match phase and for
    /// [`EngineKind::Modular`]: `0` (the default) decides automatically —
    /// `std::thread::available_parallelism` for large workloads, serial
    /// for small ones; `1` forces the serial path; any other `n` spawns
    /// exactly `n` workers. The model is bit-identical for every setting
    /// (see [`crate::scc`] and the chase crate's "Sharded saturation"
    /// docs); the global engines ignore this field for evaluation but the
    /// chase still shards.
    pub threads: usize,
}

impl WfsOptions {
    /// Options with the given chase depth.
    pub fn depth(depth: u32) -> Self {
        WfsOptions {
            budget: ChaseBudget::depth(depth),
            ..Default::default()
        }
    }

    /// Options with an unbounded chase (terminating programs only).
    pub fn unbounded() -> Self {
        WfsOptions {
            budget: ChaseBudget::unbounded(),
            ..Default::default()
        }
    }

    /// Replaces the engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Replaces the worker-thread count (`0` = auto, `1` = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// The well-founded model of `D` under `Σ` restricted to a chase segment.
///
/// Atoms outside the segment have no forward proof within the materialized
/// part of `F⁺(P)` and are reported **false**, which is exact when
/// [`WellFoundedModel::exact`] holds (the chase quiesced within budget) and
/// a depth-`n·δ`-justified approximation otherwise (Proposition 12).
#[derive(Debug)]
pub struct WellFoundedModel {
    /// The materialized chase segment.
    pub segment: ChaseSegment,
    /// The extracted finite ground normal program.
    pub ground: GroundProgram,
    /// Engine output over the segment's atoms.
    pub result: EngineResult,
    /// True iff the chase quiesced within budget, making the model exact.
    pub exact: bool,
    /// The engine that produced the result.
    pub engine: EngineKind,
    /// `Complete` iff both the chase and the engine ran to their natural
    /// fixpoints; otherwise the first truncation on the pipeline (chase
    /// before engine). Note the depth budget counts as a truncation here
    /// (`DepthCap`) even though the depth-bounded model is the paper's
    /// sanctioned approximation — `exact` is the flag for that distinction.
    pub outcome: SolveOutcome,
}

impl WellFoundedModel {
    /// True iff the *chase* was stopped by a runtime budget trip
    /// (deadline / cancellation / memory), in which case atom absence
    /// proves nothing and the model degrades to the sound positive-closure
    /// under-approximation.
    fn chase_budget_tripped(&self) -> bool {
        self.segment
            .truncation()
            .is_some_and(TruncationReason::is_budget_trip)
    }

    /// Truth value of a ground atom under `WFS(D, Σ)`.
    ///
    /// Atoms outside the segment are **false** (no forward proof within the
    /// materialized part of `F⁺(P)`, exact or depth-justified) — unless the
    /// chase was stopped by a budget trip, where an unmaterialized atom
    /// might simply not have been reached yet and reads `Unknown`.
    pub fn value(&self, atom: AtomId) -> Truth {
        if self.segment.contains(atom) {
            self.result.value(atom)
        } else if self.chase_budget_tripped() {
            Truth::Unknown
        } else {
            Truth::False
        }
    }

    /// `atom ∈ WFS(D,Σ)`.
    pub fn is_true(&self, atom: AtomId) -> bool {
        self.value(atom).is_true()
    }

    /// `¬atom ∈ WFS(D,Σ)`.
    pub fn is_false(&self, atom: AtomId) -> bool {
        self.value(atom).is_false()
    }

    /// Number of engine stages to the fixpoint. For [`EngineKind::Modular`]
    /// this is the number of dependency components processed.
    pub fn stages(&self) -> u32 {
        self.result.stages
    }

    /// Per-component statistics, when the modular engine produced the
    /// result (`None` for the global engines).
    pub fn component_stats(&self) -> Option<ModularStats> {
        self.result.stats
    }

    /// Iterates over the true atoms of the model.
    pub fn true_atoms(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.result.interp.true_atoms()
    }

    /// Iterates over segment atoms whose value is unknown (undefined).
    pub fn unknown_atoms(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.segment
            .atoms()
            .iter()
            .map(|sa| sa.atom)
            .filter(|&a| self.result.value(a).is_unknown())
    }

    /// Counts `(true, false-in-segment, unknown)` over segment atoms.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut t = 0;
        let mut f = 0;
        let mut u = 0;
        for sa in self.segment.atoms() {
            match self.result.value(sa.atom) {
                Truth::True => t += 1,
                Truth::False => f += 1,
                Truth::Unknown => u += 1,
            }
        }
        (t, f, u)
    }

    /// Renders the true atoms (non-auxiliary predicates) sorted, one per
    /// line — handy in examples and tests.
    pub fn render_true(&self, universe: &Universe) -> String {
        let mut lines: Vec<String> = self
            .true_atoms()
            .filter(|&a| !universe.pred_info(universe.atoms.pred(a)).auxiliary)
            .map(|a| universe.display_atom(a).to_string())
            .collect();
        lines.sort();
        lines.join("\n")
    }
}

impl wfdl_query::TruthSource for WellFoundedModel {
    fn value(&self, atom: AtomId) -> Truth {
        WellFoundedModel::value(self, atom)
    }

    fn certain_atoms(&self) -> Vec<AtomId> {
        self.true_atoms().collect()
    }

    fn possible_atoms(&self) -> Vec<AtomId> {
        self.segment
            .atoms()
            .iter()
            .map(|sa| sa.atom)
            .filter(|&a| !self.result.value(a).is_false())
            .collect()
    }
}

/// How a solve was produced — observability for the incremental re-solve
/// path of the compile → solve → serve lifecycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// True iff the chase was resumed from a previous model's segment
    /// instead of rebuilt from scratch.
    pub incremental: bool,
    /// Dependency components whose verdicts were copied from the previous
    /// solve (only [`EngineKind::Modular`] reuses verdicts).
    pub components_reused: usize,
    /// Worker threads the engine ran with (`1` = serial; always `1` for
    /// the global engines, which have no parallel path).
    pub threads: usize,
    /// True iff the solve was restricted to a query-relevant program
    /// slice ([`solve_sliced_packaged_budgeted`]).
    pub sliced: bool,
    /// Predicate-level dependency components intersecting the slice.
    /// `0` for unsliced solves; filled in by the caller that computed the
    /// slice (the façade's `solve_for`).
    pub slice_components: usize,
    /// Total predicate-level dependency components of the full program,
    /// on the same basis. `0` for unsliced solves.
    pub total_components: usize,
}

/// Reads the observable solve statistics out of a finished model.
fn stats_of(model: &WellFoundedModel, incremental: bool) -> SolveStats {
    SolveStats {
        incremental,
        components_reused: model.result.stats.map_or(0, |s| s.components_reused),
        threads: model.result.stats.map_or(1, |s| s.threads.max(1)),
        ..SolveStats::default()
    }
}

/// Computes `WFS(D, Σf)` on a budgeted chase segment.
pub fn solve(
    universe: &mut Universe,
    db: &Database,
    program: &SkolemProgram,
    options: WfsOptions,
) -> WellFoundedModel {
    solve_budgeted(universe, db, program, options, &SolveBudget::unlimited())
}

/// [`solve`] under a [`SolveBudget`]: the chase checks the budget at round
/// boundaries and the modular engine at component/chunk boundaries. On a
/// trip the returned model reports a truncated [`WellFoundedModel::outcome`]
/// and degrades soundly (see [`WellFoundedModel::value`]).
pub fn solve_budgeted(
    universe: &mut Universe,
    db: &Database,
    program: &SkolemProgram,
    options: WfsOptions,
    solve_budget: &SolveBudget,
) -> WellFoundedModel {
    // The thread knob rides into the chase on the budget; saturation is
    // bit-identical for every value, so options equality (and therefore
    // the façade's cache/resume decisions) stays on the user's fields.
    let budget = options.budget.with_threads(options.threads);
    let segment = ChaseSegment::build_budgeted(universe, db, program, budget, solve_budget);
    finish_model(segment, options, None, solve_budget)
}

/// Computes `WFS(D ∪ Δ, Σf)` by **resuming** a previous model's chase
/// segment with the new facts `Δ` instead of re-chasing from scratch, and
/// (for [`EngineKind::Modular`]) reusing the previous solve's verdicts for
/// every dependency component whose inputs did not change.
///
/// Preconditions (the façade's `KnowledgeBase` enforces them): `prev` was
/// solved over the same universe with the same `program` and the same
/// options, and the delta is insert-only (`new_facts` are ground, null-free
/// and were not database facts before).
///
/// # Errors
///
/// Returns [`ResumeError`] when `prev`'s segment refuses to resume
/// (cap-truncated: continuation would not equal a from-scratch chase).
/// Callers fall back to a full re-chase.
pub fn solve_resumed(
    universe: &mut Universe,
    prev: &WellFoundedModel,
    program: &SkolemProgram,
    new_facts: &[wfdl_core::AtomId],
    options: WfsOptions,
) -> Result<(WellFoundedModel, SolveStats), ResumeError> {
    solve_resumed_budgeted(
        universe,
        prev,
        program,
        new_facts,
        options,
        &SolveBudget::unlimited(),
    )
}

/// [`solve_resumed`] under a [`SolveBudget`].
///
/// # Errors
///
/// Returns [`ResumeError`] when `prev`'s segment refuses to resume.
pub fn solve_resumed_budgeted(
    universe: &mut Universe,
    prev: &WellFoundedModel,
    program: &SkolemProgram,
    new_facts: &[wfdl_core::AtomId],
    options: WfsOptions,
    solve_budget: &SolveBudget,
) -> Result<(WellFoundedModel, SolveStats), ResumeError> {
    let segment = prev
        .segment
        .resume_budgeted(universe, program, new_facts, solve_budget)?;
    let model = finish_model(segment, options, Some(prev), solve_budget);
    let stats = stats_of(&model, true);
    Ok((model, stats))
}

/// Shared tail of [`solve`] and [`solve_resumed`]: ground the segment and
/// run the selected engine (with verdict reuse when a previous modular
/// solve is available).
///
/// A chase stopped by a *budget trip* never sees the full engine: over an
/// arbitrarily interrupted segment, "no deriving instance" proves nothing
/// (the missing derivations may simply not have been chased yet), so the
/// well-founded negation-as-failure step would be unsound in both
/// directions. The model degrades to the **positive closure** — atoms
/// derivable through negation-free instances from the facts, which are true
/// in *every* completion of the chase — and everything else reads
/// `Unknown`. Depth/cap truncations keep the historical depth-approximation
/// semantics (full engine run, `exact == false`).
fn finish_model(
    segment: ChaseSegment,
    options: WfsOptions,
    prev: Option<&WellFoundedModel>,
    solve_budget: &SolveBudget,
) -> WellFoundedModel {
    finish_model_with(segment, options, prev, prev, solve_budget)
}

/// [`finish_model`] with the two roles of a previous model split:
/// `ground_prev` drives *incremental grounding* (only valid when
/// `segment` resumed that model's chase), `memo_prev` drives
/// *per-component verdict reuse* in the modular engine (valid for any
/// previous modular solve over the same universe — the fingerprint check
/// rejects components whose inputs differ). The sliced solve path
/// grounds its restricted segment from scratch but still composes with
/// the full solve's memo.
fn finish_model_with(
    segment: ChaseSegment,
    options: WfsOptions,
    ground_prev: Option<&WellFoundedModel>,
    memo_prev: Option<&WellFoundedModel>,
    solve_budget: &SolveBudget,
) -> WellFoundedModel {
    // Resumed solves ground incrementally: the previous program is
    // extended with the delta's atoms/facts/instances instead of
    // re-translating the inherited bulk.
    let ground = match ground_prev {
        Some(p) => segment.to_ground_program_from(&p.ground),
        None => segment.to_ground_program(),
    };
    let chase_trunc = segment.truncation();
    let result = if chase_trunc.is_some_and(TruncationReason::is_budget_trip) {
        positive_closure_result(&ground)
    } else {
        match options.engine {
            EngineKind::Modular => ModularEngine::new(&ground)
                .with_threads(options.threads)
                .with_budget(solve_budget.clone())
                .solve_incremental(memo_prev.map(|p| (&p.ground, &p.result))),
            // The global engines have no internal trip points: under a
            // budget they either start (and run to completion) or refuse at
            // the door.
            EngineKind::Wp | EngineKind::WpLiteral | EngineKind::Alternating
                if solve_budget.check(0).is_some() =>
            {
                let mut r = positive_closure_result(&ground);
                r.truncation = solve_budget.check(0);
                r
            }
            EngineKind::Wp => WpEngine::new(&ground).solve(StepMode::Accelerated),
            EngineKind::WpLiteral => WpEngine::new(&ground).solve(StepMode::Literal),
            EngineKind::Alternating => AlternatingEngine::new(&ground).solve(),
            EngineKind::Forward => ForwardEngine::new(&segment).solve(),
        }
    };
    let exact = segment.complete;
    let outcome = match chase_trunc
        .filter(|r| r.is_budget_trip())
        .or(result.truncation)
    {
        Some(r) => SolveOutcome::Truncated(r),
        None => {
            if exact {
                SolveOutcome::Complete
            } else {
                SolveOutcome::Truncated(chase_trunc.unwrap_or(TruncationReason::DepthCap))
            }
        }
    };
    WellFoundedModel {
        segment,
        ground,
        result,
        exact,
        engine: options.engine,
        outcome,
    }
}

/// Least fixpoint of the **negation-free** ground instances from the facts:
/// the atoms certainly true in every extension of a budget-interrupted
/// chase. Everything else is left `Unknown` — the sound degraded model.
fn positive_closure_result(ground: &GroundProgram) -> EngineResult {
    let n = ground.num_atoms();
    let mut tru = vec![false; n];
    let mut queue: Vec<u32> = Vec::new();
    for &f in ground.facts_local() {
        if !std::mem::replace(&mut tru[f as usize], true) {
            queue.push(f);
        }
    }
    // Countdown of undecided positive-body literals per negation-free rule;
    // a rule fires when it reaches zero. Rules with negative literals never
    // fire here by construction.
    let nrules = ground.num_rules();
    let mut missing: Vec<u32> = Vec::with_capacity(nrules);
    for r in 0..nrules {
        if ground.neg_local(r).is_empty() {
            missing.push(ground.pos_local(r).len() as u32);
        } else {
            missing.push(u32::MAX);
        }
    }
    // Empty-body rules fire immediately.
    for (r, m) in missing.iter().enumerate() {
        if *m == 0 {
            let h = ground.head_local(r);
            if !std::mem::replace(&mut tru[h as usize], true) {
                queue.push(h);
            }
        }
    }
    while let Some(a) = queue.pop() {
        for &rid in ground.rules_with_pos_local(a) {
            let r = rid.index();
            if missing[r] == u32::MAX {
                continue;
            }
            // Duplicate body literals are each their own countdown slot, so
            // one decrement per (rule, occurrence) pair keeps the count
            // exact as long as each atom enters the queue once.
            let dups = ground.pos_local(r).iter().filter(|&&b| b == a).count() as u32;
            missing[r] = missing[r].saturating_sub(dups);
            if missing[r] == 0 {
                missing[r] = u32::MAX; // fired
                let h = ground.head_local(r);
                if !std::mem::replace(&mut tru[h as usize], true) {
                    queue.push(h);
                }
            }
        }
    }
    let mut interp = Interp::with_capacity(n);
    let cap = ground.atoms().last().map_or(0, |a| a.index() + 1);
    let mut decided_stage = crate::result::StageMap::with_capacity(cap);
    for (local, &t) in tru.iter().enumerate() {
        if t {
            let atom = ground.atom_of_local(local as u32);
            interp.set_true(atom);
            decided_stage.insert(atom, 1);
        }
    }
    EngineResult {
        interp,
        decided_stage,
        stages: 1,
        stats: None,
        memo: None,
        truncation: None,
    }
}

/// Everything one solve produces, packaged for the serve stage: the model
/// plus the truth of each lowered constraint's violation marker, computed
/// while the universe is still mutable (the markers are nullary atoms that
/// may need interning). After this returns, nothing on the serving path
/// needs `&mut Universe` again.
#[derive(Debug)]
pub struct SolveOutput {
    /// The well-founded model.
    pub model: WellFoundedModel,
    /// Truth of each constraint's violation marker, in `violations` order.
    pub constraint_status: Vec<Truth>,
    /// How the model was produced (full vs incremental).
    pub stats: SolveStats,
}

/// [`solve`] plus constraint-status evaluation in one call — the solve
/// stage of the compile → solve → serve lifecycle.
pub fn solve_packaged(
    universe: &mut Universe,
    db: &Database,
    program: &SkolemProgram,
    options: WfsOptions,
    violations: &[PredId],
) -> SolveOutput {
    solve_packaged_budgeted(
        universe,
        db,
        program,
        options,
        violations,
        &SolveBudget::unlimited(),
    )
}

/// [`solve_packaged`] under a [`SolveBudget`].
pub fn solve_packaged_budgeted(
    universe: &mut Universe,
    db: &Database,
    program: &SkolemProgram,
    options: WfsOptions,
    violations: &[PredId],
    solve_budget: &SolveBudget,
) -> SolveOutput {
    let model = solve_budgeted(universe, db, program, options, solve_budget);
    let constraint_status = constraint_status(universe, &model, violations);
    let stats = stats_of(&model, false);
    SolveOutput {
        model,
        constraint_status,
        stats,
    }
}

/// Goal-directed solve: [`solve_packaged_budgeted`] restricted to a
/// **relevance-closed** predicate slice (`pred_mask`, indexed by
/// [`PredId`]), as computed by `wfdl-analyze`'s `ProgramSlice` from a
/// query's goal predicates.
///
/// The chase seeds only in-slice facts and fires only rules with
/// in-slice heads; the modular engine then runs on the restricted ground
/// program. Because the mask is relevance-closed (it follows both
/// positive and negative dependency edges), every in-slice atom gets the
/// **same verdict the full solve would assign** — with the same
/// `options.budget`, derivation depths coincide, so even
/// depth-truncation semantics match bit-for-bit.
///
/// `memo_prev` optionally composes with an earlier **modular** solve
/// over the same universe (typically the last full solve): components of
/// the sliced ground program whose input fingerprints and atom sets
/// coincide with a previous component reuse its verdicts instead of
/// re-solving.
///
/// Two sliced-model caveats the caller must enforce (the façade's
/// `SolvedModel` slice guard does):
///
/// * atoms over **out-of-slice** predicates were never chased — the
///   model's `value()` reads them `False`, which is only meaningful for
///   in-slice atoms. Queries must be checked against the mask.
/// * constraints are not goal-directed: a violation predicate outside
///   the slice reports [`Truth::Unknown`] (its rules never fired, so
///   neither verdict would be sound).
///
/// `stats.sliced` is set; the component-count fields are left `0` for
/// the slice-computing caller to fill.
#[allow(clippy::too_many_arguments)]
pub fn solve_sliced_packaged_budgeted(
    universe: &mut Universe,
    db: &Database,
    program: &SkolemProgram,
    options: WfsOptions,
    violations: &[PredId],
    solve_budget: &SolveBudget,
    pred_mask: &[bool],
    memo_prev: Option<&WellFoundedModel>,
) -> SolveOutput {
    let budget = options.budget.with_threads(options.threads);
    let segment = ChaseSegment::build_restricted_budgeted(
        universe,
        db,
        program,
        budget,
        solve_budget,
        pred_mask,
    );
    let model = finish_model_with(segment, options, None, memo_prev, solve_budget);
    let constraint_status = constraint_status_sliced(universe, &model, violations, pred_mask);
    let mut stats = stats_of(&model, false);
    stats.sliced = true;
    SolveOutput {
        model,
        constraint_status,
        stats,
    }
}

/// [`solve_resumed`] plus constraint-status evaluation in one call — the
/// incremental solve stage after an insert-only delta.
///
/// # Errors
///
/// Returns [`ResumeError`] when `prev`'s segment refuses to resume; the
/// caller falls back to a full [`solve_packaged`].
pub fn solve_packaged_resumed(
    universe: &mut Universe,
    prev: &WellFoundedModel,
    program: &SkolemProgram,
    new_facts: &[wfdl_core::AtomId],
    options: WfsOptions,
    violations: &[PredId],
) -> Result<SolveOutput, ResumeError> {
    solve_packaged_resumed_budgeted(
        universe,
        prev,
        program,
        new_facts,
        options,
        violations,
        &SolveBudget::unlimited(),
    )
}

/// [`solve_packaged_resumed`] under a [`SolveBudget`].
///
/// # Errors
///
/// Returns [`ResumeError`] when `prev`'s segment refuses to resume.
#[allow(clippy::too_many_arguments)]
pub fn solve_packaged_resumed_budgeted(
    universe: &mut Universe,
    prev: &WellFoundedModel,
    program: &SkolemProgram,
    new_facts: &[wfdl_core::AtomId],
    options: WfsOptions,
    violations: &[PredId],
    solve_budget: &SolveBudget,
) -> Result<SolveOutput, ResumeError> {
    let (model, stats) =
        solve_resumed_budgeted(universe, prev, program, new_facts, options, solve_budget)?;
    let constraint_status = constraint_status(universe, &model, violations);
    Ok(SolveOutput {
        model,
        constraint_status,
        stats,
    })
}

/// Computes the **conservative no-UNA approximation** used in the paper's
/// Example 2 discussion: labelled nulls might denote equal values, so a
/// null-containing atom that merely fails to be derived cannot be declared
/// false, and rules negating such atoms never fire. The equality-friendly
/// WFS of \[4\] is a different (and co-NP-hard) semantics; this
/// approximation suffices to reproduce the qualitative separation the paper
/// draws (`ValidID(f(a))` is derived under UNA, withheld without it).
pub fn solve_no_una(
    universe: &mut Universe,
    db: &Database,
    program: &SkolemProgram,
    budget: ChaseBudget,
) -> WellFoundedModel {
    let segment = ChaseSegment::build(universe, db, program, budget);
    let ground = segment.to_ground_program();
    let frozen: Vec<AtomId> = ground
        .atoms()
        .iter()
        .copied()
        .filter(|&a| !universe.atom_is_constant_free_of_nulls(a))
        .collect();
    let result = WpEngine::new(&ground)
        .with_frozen(frozen)
        .solve(StepMode::Accelerated);
    let exact = segment.complete;
    let outcome = if exact {
        SolveOutcome::Complete
    } else {
        SolveOutcome::Truncated(segment.truncation().unwrap_or(TruncationReason::DepthCap))
    };
    WellFoundedModel {
        segment,
        ground,
        result,
        exact,
        engine: EngineKind::Wp,
        outcome,
    }
}

/// Lowers a [`Program`]'s negative constraints into rules deriving fresh
/// nullary violation predicates, returning the skolemized program together
/// with the violation predicate of each constraint (in order).
pub fn lower_with_constraints(
    universe: &mut Universe,
    program: &Program,
) -> Result<(SkolemProgram, Vec<PredId>), CoreError> {
    let mut combined = Program {
        tgds: program.tgds.clone(),
        constraints: Vec::new(),
    };
    let mut violation_preds = Vec::with_capacity(program.constraints.len());
    for (i, c) in program.constraints.iter().enumerate() {
        let base = match &c.label {
            Some(l) => format!("violated_{l}"),
            None => format!("violated_{i}"),
        };
        let bot = universe.aux_pred(&base, 0);
        violation_preds.push(bot);
        let mut tgd = Tgd::new(
            universe,
            c.body_pos.clone(),
            c.body_neg.clone(),
            vec![RuleAtom::new(bot, Vec::new())],
        )?;
        if let Some(span) = c.span() {
            tgd = tgd.with_span(span);
        }
        combined.tgds.push(tgd);
    }
    let skolemized = combined.skolemize(universe)?;
    Ok((skolemized, violation_preds))
}

/// Truth of each lowered constraint's violation atom in a model:
/// `True` = surely violated, `Unknown` = possibly violated, `False` = safe.
pub fn constraint_status(
    universe: &mut Universe,
    model: &WellFoundedModel,
    violation_preds: &[PredId],
) -> Vec<Truth> {
    violation_preds
        .iter()
        .map(|&p| {
            // Constraint lowering registers every violation pred as
            // nullary, so the empty-args interning cannot fail.
            #[allow(clippy::expect_used)]
            let atom = universe.atom(p, Vec::new()).expect("nullary");
            model.value(atom)
        })
        .collect()
}

/// [`constraint_status`] for a slice-restricted model: a constraint
/// whose violation predicate is **outside** the slice was not solved —
/// its rules never fired — so it reports [`Truth::Unknown`] (reading the
/// model would yield a spurious `False`). Violation predicates are
/// nullary markers no rule body reads, so in practice every constraint
/// is `Unknown` under a sliced solve unless its marker was named a goal.
pub fn constraint_status_sliced(
    universe: &mut Universe,
    model: &WellFoundedModel,
    violation_preds: &[PredId],
    pred_mask: &[bool],
) -> Vec<Truth> {
    violation_preds
        .iter()
        .map(|&p| {
            if !pred_mask.get(p.index()).copied().unwrap_or(false) {
                return Truth::Unknown;
            }
            // Constraint lowering registers every violation pred as
            // nullary, so the empty-args interning cannot fail.
            #[allow(clippy::expect_used)]
            let atom = universe.atom(p, Vec::new()).expect("nullary");
            model.value(atom)
        })
        .collect()
}

/// Outcome of [`solve_stable`].
#[derive(Clone, Debug)]
pub struct StabilityReport {
    /// Depths at which models were computed.
    pub depths: Vec<u32>,
    /// Whether the final rounds were stable (or the chase completed).
    pub stable: bool,
}

/// Deepening heuristic: solves at increasing depths until either the chase
/// completes (exact) or the truth values of all previously-materialized
/// atoms are unchanged across `required_stable_rounds` consecutive
/// deepenings. Not a proof of exactness for truncated chases — the paper's
/// guarantee needs depth `n·δ` — but exact whenever `exact` is reported and
/// validated against ground truth on the paper's examples.
#[allow(clippy::too_many_arguments)]
pub fn solve_stable(
    universe: &mut Universe,
    db: &Database,
    program: &SkolemProgram,
    start_depth: u32,
    step: u32,
    max_depth: u32,
    required_stable_rounds: u32,
    engine: EngineKind,
) -> (WellFoundedModel, StabilityReport) {
    assert!(step > 0, "deepening step must be positive");
    let mut depth = start_depth;
    let mut report = StabilityReport {
        depths: vec![depth],
        stable: false,
    };
    let mut model = solve(
        universe,
        db,
        program,
        WfsOptions {
            budget: ChaseBudget::depth(depth),
            engine,
            ..Default::default()
        },
    );
    let mut stable_rounds = 0u32;
    while !model.exact && depth < max_depth {
        depth = (depth + step).min(max_depth);
        report.depths.push(depth);
        let next = solve(
            universe,
            db,
            program,
            WfsOptions {
                budget: ChaseBudget::depth(depth),
                engine,
                ..Default::default()
            },
        );
        let agree = model
            .segment
            .atoms()
            .iter()
            .all(|sa| model.result.value(sa.atom) == next.value(sa.atom));
        stable_rounds = if agree { stable_rounds + 1 } else { 0 };
        model = next;
        if model.exact || stable_rounds >= required_stable_rounds {
            break;
        }
    }
    report.stable = model.exact || stable_rounds >= required_stable_rounds;
    (model, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdl_chase::paper::example4;

    #[test]
    fn all_engines_agree_on_example4() {
        let mut u = Universe::new();
        let (db, prog) = example4(&mut u);
        let engines = [
            EngineKind::Modular,
            EngineKind::Wp,
            EngineKind::WpLiteral,
            EngineKind::Alternating,
            EngineKind::Forward,
        ];
        let models: Vec<WellFoundedModel> = engines
            .iter()
            .map(|&e| solve(&mut u, &db, &prog, WfsOptions::depth(6).with_engine(e)))
            .collect();
        let reference = &models[0];
        for (m, e) in models.iter().zip(&engines).skip(1) {
            for sa in reference.segment.atoms() {
                assert_eq!(
                    reference.value(sa.atom),
                    m.value(sa.atom),
                    "engine {e:?} disagrees on {}",
                    u.display_atom(sa.atom)
                );
            }
        }
    }

    #[test]
    fn example4_key_verdicts() {
        let mut u = Universe::new();
        let (db, prog) = example4(&mut u);
        let model = solve(&mut u, &db, &prog, WfsOptions::depth(8));
        let t = u.lookup_pred("T").unwrap();
        let s = u.lookup_pred("S").unwrap();
        let zero = u.lookup_constant("0").unwrap();
        let t0 = u.atom(t, vec![zero]).unwrap();
        let s0 = u.atom(s, vec![zero]).unwrap();
        assert!(model.is_true(t0));
        assert!(model.is_false(s0));
        // A completely foreign atom is false (no forward proof).
        let q = u.lookup_pred("Q").unwrap();
        let q0 = u.atom(q, vec![zero]).unwrap();
        assert!(model.is_false(q0));
        assert!(!model.exact, "Example 4 chase is infinite");
    }

    #[test]
    fn stability_deepening_on_example4() {
        let mut u = Universe::new();
        let (db, prog) = example4(&mut u);
        let (model, report) = solve_stable(&mut u, &db, &prog, 2, 2, 12, 2, EngineKind::Wp);
        assert!(report.stable, "depths tried: {:?}", report.depths);
        assert!(report.depths.len() >= 2);
        let t = u.lookup_pred("T").unwrap();
        let zero = u.lookup_constant("0").unwrap();
        let t0 = u.atom(t, vec![zero]).unwrap();
        assert!(model.is_true(t0));
    }

    #[test]
    fn constraints_lowered_and_reported() {
        use wfdl_core::{Constraint, RTerm, Var};
        let mut u = Universe::new();
        let p = u.pred("p", 1).unwrap();
        let q = u.pred("q", 1).unwrap();
        let x = RTerm::Var(Var::new(0));
        let mut prog = Program::new();
        prog.push(
            Tgd::new(
                &u,
                vec![RuleAtom::new(p, vec![x])],
                vec![],
                vec![RuleAtom::new(q, vec![x])],
            )
            .unwrap(),
        );
        // Constraint: p(X), q(X) -> ⊥ (will be violated).
        prog.push_constraint(
            Constraint::new(
                &u,
                vec![RuleAtom::new(p, vec![x]), RuleAtom::new(q, vec![x])],
                vec![],
            )
            .unwrap(),
        );
        // Constraint: q(X), not p(X) -> ⊥ (safe).
        prog.push_constraint(
            Constraint::new(
                &u,
                vec![RuleAtom::new(q, vec![x])],
                vec![RuleAtom::new(p, vec![x])],
            )
            .unwrap(),
        );
        let (sk, viols) = lower_with_constraints(&mut u, &prog).unwrap();
        let mut db = Database::new();
        let c = u.constant("c");
        let pc = u.atom(p, vec![c]).unwrap();
        db.insert(&u, pc).unwrap();
        let model = solve(&mut u, &db, &sk, WfsOptions::unbounded());
        let status = constraint_status(&mut u, &model, &viols);
        assert_eq!(status, vec![Truth::True, Truth::False]);
    }

    #[test]
    fn counts_and_render() {
        let mut u = Universe::new();
        let (db, prog) = example4(&mut u);
        let model = solve(&mut u, &db, &prog, WfsOptions::depth(5));
        let (t, f, unk) = model.counts();
        assert!(t > 0 && f > 0);
        assert_eq!(unk, 0, "example 4 has a total well-founded model");
        let rendered = model.render_true(&u);
        assert!(rendered.contains("T(0)"));
        assert!(!rendered.contains("S(0)"));
    }
}
