//! Van Gelder's alternating fixpoint — an independent WFS engine used to
//! cross-validate [`crate::wp::WpEngine`] and as an ablation baseline.
//!
//! Let `S(J)` be the minimal model of the Gelfond–Lifschitz reduct `P^J`
//! (drop every rule with a negative body atom in `J`, then delete the
//! remaining negative literals). `S` is antitone, so `S∘S` is monotone:
//!
//! * `I_0 = ∅`, `J_k = S(I_k)`, `I_(k+1) = S(J_k)`;
//! * `I` ascends to the set of **true** atoms, `J` descends to the set of
//!   **possible** atoms; `false = universe \ J_∞`, `unknown = J_∞ \ I_∞`.
//!
//! This coincides with `lfp(W_P)` (van Gelder 1989); the workspace tests
//! assert that agreement on every program they touch, including thousands of
//! random ones.

use crate::result::EngineResult;
use wfdl_core::BitSet;
use wfdl_storage::GroundProgram;

/// The alternating-fixpoint engine. Borrows the ground program's dense
/// local ids and CSR indexes directly.
pub struct AlternatingEngine<'a> {
    prog: &'a GroundProgram,
}

impl<'a> AlternatingEngine<'a> {
    /// Prepares the engine for a ground program.
    pub fn new(prog: &'a GroundProgram) -> Self {
        AlternatingEngine { prog }
    }

    /// Runs the alternation to its fixpoint.
    #[allow(clippy::needless_range_loop)] // parallel arrays are indexed together
    pub fn solve(&self) -> EngineResult {
        let d = self.prog;
        let n = d.num_atoms();

        let mut i_set = BitSet::with_capacity(n); // true underestimate
        let mut j_set = self.reduct_closure(&i_set); // possible overestimate

        let mut stage_of = vec![0u32; n];
        let mut stage = 1u32;
        // Atoms outside the initial overestimate are false at stage 1.
        for a in 0..n {
            if !j_set.contains(a) {
                stage_of[a] = stage;
            }
        }

        loop {
            let new_i = self.reduct_closure(&j_set);
            let new_j = self.reduct_closure(&new_i);
            let done = new_i == i_set && new_j == j_set;
            stage += 1;
            for a in 0..n {
                if new_i.contains(a) && !i_set.contains(a) {
                    stage_of[a] = stage;
                }
                if !new_j.contains(a) && j_set.contains(a) {
                    stage_of[a] = stage;
                }
            }
            i_set = new_i;
            j_set = new_j;
            if done {
                stage -= 1;
                break;
            }
        }

        let mut truth_false = BitSet::with_capacity(n);
        for a in 0..n {
            if !j_set.contains(a) {
                truth_false.insert(a);
            }
        }
        EngineResult::from_ground(d, &i_set, &truth_false, &stage_of, stage)
    }

    /// `S(J)`: least model of the GL-reduct w.r.t. the assumed-true set `J`.
    #[allow(clippy::needless_range_loop)] // parallel arrays are indexed together
    fn reduct_closure(&self, j: &BitSet) -> BitSet {
        let d = self.prog;
        let n = d.num_atoms();
        let mut derived = BitSet::with_capacity(n);
        let mut queue: Vec<u32> = Vec::new();

        let mut missing: Vec<u32> = vec![0; d.num_rules()];
        for r in 0..d.num_rules() {
            if d.neg_local(r).iter().any(|&b| j.contains(b as usize)) {
                missing[r] = u32::MAX; // rule removed by the reduct
                continue;
            }
            missing[r] = d.pos_local(r).len() as u32;
            if missing[r] == 0 {
                let h = d.head_local(r);
                if derived.insert(h as usize) {
                    queue.push(h);
                }
            }
        }
        for &f in d.facts_local() {
            if derived.insert(f as usize) {
                queue.push(f);
            }
        }
        while let Some(a) = queue.pop() {
            for &rid in d.rules_with_pos_local(a) {
                let r = rid.index();
                if missing[r] == u32::MAX || missing[r] == 0 {
                    continue;
                }
                missing[r] -= d.pos_local(r).iter().filter(|&&b| b == a).count() as u32;
                if missing[r] == 0 {
                    let h = d.head_local(r);
                    if derived.insert(h as usize) {
                        queue.push(h);
                    }
                }
            }
        }
        derived
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wp::{StepMode, WpEngine};
    use wfdl_core::{AtomId, Truth};
    use wfdl_storage::{GroundProgramBuilder, GroundRule};

    fn a(i: usize) -> AtomId {
        AtomId::from_index(i)
    }

    #[test]
    fn agrees_with_wp_on_basics() {
        // Mix of negation, loops, facts.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![a(2)]));
        b.add_rule(GroundRule::new(a(2), vec![a(0)], vec![a(1)]));
        b.add_rule(GroundRule::new(a(3), vec![a(1)], vec![]));
        b.add_rule(GroundRule::new(a(4), vec![a(4)], vec![]));
        b.add_rule(GroundRule::new(a(5), vec![a(0)], vec![a(4)]));
        let p = b.finish();
        let alt = AlternatingEngine::new(&p).solve();
        let wp = WpEngine::new(&p).solve(StepMode::Accelerated);
        for atom in p.atoms() {
            assert_eq!(alt.value(*atom), wp.value(*atom), "{atom:?}");
        }
        // Spot-check the semantics directly.
        assert_eq!(alt.value(a(1)), Truth::Unknown);
        assert_eq!(alt.value(a(2)), Truth::Unknown);
        assert_eq!(alt.value(a(3)), Truth::Unknown);
        assert_eq!(alt.value(a(4)), Truth::False);
        assert_eq!(alt.value(a(5)), Truth::True);
    }

    #[test]
    fn three_valued_structure() {
        // a1 :- not a2; a2 :- not a1; a3 :- a1; a3 :- a2; a4 :- not a3.
        // a1,a2 unknown; a3 unknown; a4 unknown.
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(1), vec![], vec![a(2)]));
        b.add_rule(GroundRule::new(a(2), vec![], vec![a(1)]));
        b.add_rule(GroundRule::new(a(3), vec![a(1)], vec![]));
        b.add_rule(GroundRule::new(a(3), vec![a(2)], vec![]));
        b.add_rule(GroundRule::new(a(4), vec![], vec![a(3)]));
        let p = b.finish();
        let alt = AlternatingEngine::new(&p).solve();
        for i in 1..=4 {
            assert_eq!(alt.value(a(i)), Truth::Unknown, "a{i}");
        }
    }

    #[test]
    fn totally_false_program() {
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![a(1)], vec![]));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![]));
        let p = b.finish();
        let alt = AlternatingEngine::new(&p).solve();
        assert_eq!(alt.value(a(0)), Truth::False);
        assert_eq!(alt.value(a(1)), Truth::False);
        // Both decided at the very first stage (outside S(∅)'s closure).
        assert_eq!(alt.stage_of(a(0)), Some(1));
    }
}
