//! The forward-proof operator `Ŵ_P` (Definitions 5 & 7, Theorem 8),
//! evaluated directly on a chase segment.
//!
//! ## From subforest proofs to aliveness
//!
//! A *forward proof* of `a` is a finite subforest `π` of `F⁺(P)` containing
//! a goal node labelled `a`, closed under parents, in which every edge
//! rule's positive side atoms are supported by `π`-nodes of strictly
//! smaller derivation level. Its *negative hypotheses* `N(π)` are the
//! negative body atoms of the edge rules used.
//!
//! On the condensed segment this collapses to an **aliveness least
//! fixpoint**: an atom is alive iff it is a database fact or some rule
//! instance derives it whose guard and positive side atoms are all alive
//! and whose negative side atoms pass a mode-dependent test against the
//! current interpretation `I`:
//!
//! * **strict** (`∀b ∈ B⁻: ¬b ∈ I`) — alive atoms are exactly those with a
//!   forward proof `π` such that `¬.N(π) ⊆ I` (the positive half of `Ŵ`);
//! * **avoid** (`∀b ∈ B⁻: b ∉ I`) — alive atoms are exactly those with a
//!   forward proof `π` such that `N(π) ∩ I = ∅`; an atom *not* alive in
//!   this mode has every proof blocked, so its negation enters `Ŵ(I)`.
//!
//! Min-level supports always satisfy the level-strictness requirement of
//! Definition 5(3) (every node's body atoms are present in the forest
//! strictly before the node itself), so the level bookkeeping of the
//! explicit forest imposes no extra constraint on *which atoms* have proofs
//! — only on which subforests count as proofs. The equivalence is exercised
//! by tests against the explicit forest and the other two engines.
//!
//! Atoms that never occur in the forest have no forward proof, so their
//! negations enter at stage 1 — exactly the paper's
//! `Ŵ_{P,1} ⊇ {¬a | a ∉ label(F⁺(P))}` in Example 9. The engine's
//! interpretation covers the segment's atoms; the solver layer maps absent
//! atoms to `False`.

use crate::result::EngineResult;
use wfdl_chase::{ChaseSegment, InstanceId, SegAtomId};
use wfdl_core::{AtomId, BitSet, Interp};

/// The `Ŵ_P` engine over a chase segment.
///
/// Runs directly on the segment's dense ids and CSR occurrence indexes —
/// no per-engine hash map, no per-atom allocation: the segment already
/// stores everything the aliveness fixpoint needs.
pub struct ForwardEngine<'a> {
    seg: &'a ChaseSegment,
}

impl<'a> ForwardEngine<'a> {
    /// Prepares the engine for a segment.
    pub fn new(seg: &'a ChaseSegment) -> Self {
        ForwardEngine { seg }
    }

    /// Admissibility of every instance under **both** regimes in one pass
    /// over the negative side atoms: `(strict, avoid)`. A hypothesis atom
    /// that never occurs in the forest has no forward proof, so its
    /// negation is in `Ŵ_{P,1}` (Example 9); treat it as false here.
    fn admissibility(&self, interp: &Interp) -> (Vec<bool>, Vec<bool>) {
        let num = self.seg.num_instances();
        let mut strict = vec![true; num];
        let mut avoid = vec![true; num];
        for ii in 0..num {
            let id = InstanceId::from_index(ii);
            for &b in self.seg.neg_atoms(id) {
                if strict[ii] && !interp.is_false(b) && self.seg.contains(b) {
                    strict[ii] = false;
                }
                if avoid[ii] && interp.is_true(b) {
                    avoid[ii] = false;
                }
                if !strict[ii] && !avoid[ii] {
                    break;
                }
            }
        }
        (strict, avoid)
    }

    /// Aliveness least fixpoint for a precomputed admissibility vector.
    fn alive_with(&self, admissible: &[bool]) -> BitSet {
        let n = self.seg.atoms().len();
        let num = self.seg.num_instances();
        let mut alive = BitSet::with_capacity(n);
        let mut queue: Vec<u32> = Vec::new();
        let mut missing: Vec<u32> = (0..num)
            .map(|ii| self.seg.num_distinct_pos(InstanceId::from_index(ii)))
            .collect();

        for &fs in self.seg.fact_segs() {
            if alive.insert(fs.index()) {
                queue.push(fs.index() as u32);
            }
        }
        // Instances with empty positive bodies cannot exist (guarded rules
        // always have a guard), so seeding from facts is enough.
        while let Some(a) = queue.pop() {
            for &iid in self
                .seg
                .instances_with_body_seg(SegAtomId::from_index(a as usize))
            {
                let ii = iid.index();
                if !admissible[ii] || missing[ii] == 0 {
                    continue;
                }
                missing[ii] -= 1;
                if missing[ii] == 0 {
                    let h = self.seg.head_seg(iid).index();
                    if alive.insert(h) {
                        queue.push(h as u32);
                    }
                }
            }
        }
        alive
    }

    /// One application of `Ŵ_P` restricted to the segment's atoms. The two
    /// aliveness passes share a single admissibility sweep over the
    /// instances' negative sides.
    pub fn step(&self, interp: &Interp) -> Interp {
        let (strict, avoid) = self.admissibility(interp);
        let provable = self.alive_with(&strict);
        let not_refuted = self.alive_with(&avoid);
        let mut out = Interp::new();
        for (i, sa) in self.seg.atoms().iter().enumerate() {
            if provable.contains(i) {
                out.set_true(sa.atom);
            } else if !not_refuted.contains(i) {
                out.set_false(sa.atom);
            }
        }
        out
    }

    /// Iterates `Ŵ_P` from `∅` to its least fixpoint, counting stages.
    pub fn solve(&self) -> EngineResult {
        let mut interp = Interp::new();
        let mut decided_stage = crate::result::StageMap::default();
        let mut stage = 0u32;
        loop {
            stage += 1;
            let next = self.step(&interp);
            let mut changed = false;
            for sa in self.seg.atoms() {
                let old = interp.value(sa.atom);
                let new = next.value(sa.atom);
                if old != new {
                    debug_assert!(old.is_unknown(), "Ŵ must be monotone");
                    changed = true;
                    decided_stage.insert(sa.atom, stage);
                }
            }
            interp = next;
            if !changed {
                stage -= 1;
                break;
            }
        }
        EngineResult {
            interp,
            decided_stage,
            stages: stage,
            stats: None,
            memo: None,
            truncation: None,
        }
    }

    /// Instances deriving a segment atom (by id); empty for atoms outside
    /// the segment.
    pub fn derivers(&self, atom: AtomId) -> &[InstanceId] {
        self.seg.instances_with_head(atom)
    }

    /// The segment this engine runs on.
    pub fn segment(&self) -> &ChaseSegment {
        self.seg
    }

    /// Looks up the segment index of an atom.
    pub fn segment_index(&self, atom: AtomId) -> Option<u32> {
        self.seg.seg_id(atom).map(|s| s.index() as u32)
    }

    /// Convenience: materializes an instance by id.
    pub fn instance(&self, id: u32) -> wfdl_chase::RuleInstance {
        self.seg.instance(InstanceId::from_index(id as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdl_chase::{paper::example4, ChaseBudget, ChaseSegment};
    use wfdl_core::{Truth, Universe};

    fn solve_example4(depth: u32) -> (Universe, ChaseSegment, EngineResult) {
        let mut u = Universe::new();
        let (db, prog) = example4(&mut u);
        let seg = ChaseSegment::build(&mut u, &db, &prog, ChaseBudget::depth(depth));
        let eng = ForwardEngine::new(&seg);
        let res = eng.solve();
        (u, seg, res)
    }

    fn atom(u: &Universe, pred: &str, args: &[&str]) -> Option<AtomId> {
        let p = u.lookup_pred(pred)?;
        let ts: Option<Vec<_>> = args.iter().map(|a| lookup_term(u, a)).collect();
        u.atoms.lookup(p, &ts?)
    }

    /// Parses `0`, `1`, or nested `f(x,y,z)` renderings used in tests.
    fn lookup_term(u: &Universe, s: &str) -> Option<wfdl_core::TermId> {
        if let Some(rest) = s.strip_prefix("f(") {
            let inner = &rest[..rest.len() - 1];
            let mut parts = Vec::new();
            let mut depth = 0usize;
            let mut cur = String::new();
            for c in inner.chars() {
                match c {
                    '(' => {
                        depth += 1;
                        cur.push(c);
                    }
                    ')' => {
                        depth -= 1;
                        cur.push(c);
                    }
                    ',' if depth == 0 => {
                        parts.push(cur.clone());
                        cur.clear();
                    }
                    _ => cur.push(c),
                }
            }
            parts.push(cur);
            let f = u.lookup_skolem("sk_r1_0")?;
            let args: Option<Vec<_>> = parts.iter().map(|p| lookup_term(u, p)).collect();
            u.terms.lookup_skolem(f, &args?)
        } else {
            u.lookup_constant(s)
        }
    }

    #[test]
    fn example9_verdicts_on_segment() {
        let (u, seg, res) = solve_example4(6);
        assert!(!seg.complete);
        // Paper (Example 9): P(0,tj) true, Q(tj) false, S(0) false, T(0) true.
        let t0 = atom(&u, "T", &["0"]).unwrap();
        assert_eq!(res.value(t0), Truth::True, "T(0) must be well-founded");
        let s0 = atom(&u, "S", &["0"]).unwrap();
        assert_eq!(res.value(s0), Truth::False, "S(0) must be unfounded");
        let p01 = atom(&u, "P", &["0", "1"]).unwrap();
        assert_eq!(res.value(p01), Truth::True);
        let q1 = atom(&u, "Q", &["f(0,0,1)"]);
        if let Some(q) = q1 {
            // Q(a) where a = f(0,0,1): false per the paper.
            assert_eq!(res.value(q), Truth::False);
        }
        let pa = atom(&u, "P", &["0", "f(0,0,1)"]).unwrap();
        assert_eq!(res.value(pa), Truth::True);
    }

    #[test]
    fn example9_stage_grows_with_depth() {
        // T(0) enters the fixpoint only after the whole P/Q alternation has
        // resolved, so its entry stage must grow with segment depth — the
        // finite shadow of `T(0) ∈ Ŵ_{P,ω+2}`.
        let (u4, _, res4) = solve_example4(4);
        let (u8, _, res8) = solve_example4(8);
        let t0_4 = atom(&u4, "T", &["0"]).unwrap();
        let t0_8 = atom(&u8, "T", &["0"]).unwrap();
        let s4 = res4.stage_of(t0_4).unwrap();
        let s8 = res8.stage_of(t0_8).unwrap();
        assert!(
            s8 > s4,
            "entry stage should grow with depth: depth4 -> {s4}, depth8 -> {s8}"
        );
    }

    #[test]
    fn stage1_contains_r_chain_and_absent_negations() {
        let (u, seg, res) = solve_example4(5);
        // R-atoms are provable without hypotheses: stage 1.
        let r001 = atom(&u, "R", &["0", "0", "1"]).unwrap();
        assert_eq!(res.stage_of(r001), Some(1));
        // Q(1) is refuted at stage 2 (needs P(0,0) ∈ Ŵ_{P,1}).
        let q1 = atom(&u, "Q", &["1"]).unwrap();
        assert_eq!(res.stage_of(q1), Some(2));
        assert_eq!(res.value(q1), Truth::False);
        // P(0,1) needs ¬Q(1): stage 3.
        let p01 = atom(&u, "P", &["0", "1"]).unwrap();
        assert_eq!(res.stage_of(p01), Some(3));
        // Sanity: every segment atom is decided on this (truncated but
        // well-behaved) example.
        for sa in seg.atoms() {
            assert!(!res.value(sa.atom).is_unknown(), "{:?}", sa.atom);
        }
    }
}
