//! Common output type of the fixpoint engines.

use crate::scc::{ModularMemo, ModularStats};
use wfdl_core::{AtomId, BitSet, Interp, TruncationReason, Truth};
use wfdl_storage::GroundProgram;

/// Per-atom decision stages as a flat array indexed by [`AtomId`]
/// (universe atom ids are dense, so this beats a hash map by an order of
/// magnitude on the assemble-result path every solve takes).
#[derive(Clone, Debug, Default)]
pub struct StageMap {
    /// `u32::MAX` = undecided.
    stages: Vec<u32>,
}

impl StageMap {
    const UNDECIDED: u32 = u32::MAX;

    /// An empty map pre-sized for atom ids below `n`.
    pub fn with_capacity(n: usize) -> Self {
        StageMap {
            stages: vec![Self::UNDECIDED; n],
        }
    }

    /// Records the decision stage of an atom.
    pub fn insert(&mut self, atom: AtomId, stage: u32) {
        debug_assert_ne!(stage, Self::UNDECIDED);
        let i = atom.index();
        if self.stages.len() <= i {
            self.stages.resize(i + 1, Self::UNDECIDED);
        }
        self.stages[i] = stage;
    }

    /// Decision stage of an atom, if decided.
    #[inline]
    pub fn get(&self, atom: AtomId) -> Option<u32> {
        match self.stages.get(atom.index()) {
            Some(&s) if s != Self::UNDECIDED => Some(s),
            _ => None,
        }
    }

    /// Iterates `(atom, stage)` over decided atoms, in atom-id order.
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, u32)> + '_ {
        self.stages
            .iter()
            .enumerate()
            .filter(|(_, &s)| s != Self::UNDECIDED)
            .map(|(i, &s)| (AtomId::from_index(i), s))
    }
}

/// The three-valued model computed by an engine over the atoms of a ground
/// program, with per-atom decision stages.
#[derive(Clone, Debug)]
pub struct EngineResult {
    /// Truth values over the program's atom universe.
    pub interp: Interp,
    /// Stage at which each decided atom obtained its value.
    pub decided_stage: StageMap,
    /// Number of productive stages until the fixpoint.
    pub stages: u32,
    /// Per-component statistics (populated by the SCC-modular engine).
    pub stats: Option<ModularStats>,
    /// Condensation + per-component input fingerprints (populated by the
    /// SCC-modular engine), the basis for verdict reuse on the next
    /// incremental solve.
    pub memo: Option<ModularMemo>,
    /// `Some` iff the evaluation was stopped early by a [`SolveBudget`]
    /// trip. The model is then a sound under-approximation: every decided
    /// atom carries its final well-founded value (components run in
    /// dependencies-first order), every unevaluated atom reads `Unknown`,
    /// and `memo` is `None` so the partial sweep cannot seed verdict reuse.
    ///
    /// [`SolveBudget`]: wfdl_core::SolveBudget
    pub truncation: Option<TruncationReason>,
}

impl EngineResult {
    pub(crate) fn from_ground(
        prog: &GroundProgram,
        truth_true: &BitSet,
        truth_false: &BitSet,
        stage_of: &[u32],
        stages: u32,
    ) -> Self {
        let mut interp = Interp::with_capacity(prog.num_atoms());
        let cap = prog.atoms().last().map_or(0, |a| a.index() + 1);
        let mut decided_stage = StageMap::with_capacity(cap);
        for (i, &atom) in prog.atoms().iter().enumerate() {
            if truth_true.contains(i) {
                interp.set_true(atom);
                decided_stage.insert(atom, stage_of[i]);
            } else if truth_false.contains(i) {
                interp.set_false(atom);
                decided_stage.insert(atom, stage_of[i]);
            }
        }
        EngineResult {
            interp,
            decided_stage,
            stages,
            stats: None,
            memo: None,
            truncation: None,
        }
    }

    /// Truth value of an atom (`Unknown` for undecided or unmentioned).
    #[inline]
    pub fn value(&self, atom: AtomId) -> Truth {
        self.interp.value(atom)
    }

    /// Decision stage of an atom, if decided.
    pub fn stage_of(&self, atom: AtomId) -> Option<u32> {
        self.decided_stage.get(atom)
    }
}
