//! Common output type of the fixpoint engines.

use crate::scc::ModularStats;
use wfdl_core::{AtomId, BitSet, FxHashMap, Interp, Truth};
use wfdl_storage::GroundProgram;

/// The three-valued model computed by an engine over the atoms of a ground
/// program, with per-atom decision stages.
#[derive(Clone, Debug)]
pub struct EngineResult {
    /// Truth values over the program's atom universe.
    pub interp: Interp,
    /// Stage at which each decided atom obtained its value.
    pub decided_stage: FxHashMap<AtomId, u32>,
    /// Number of productive stages until the fixpoint.
    pub stages: u32,
    /// Per-component statistics (populated by the SCC-modular engine).
    pub stats: Option<ModularStats>,
}

impl EngineResult {
    pub(crate) fn from_ground(
        prog: &GroundProgram,
        truth_true: &BitSet,
        truth_false: &BitSet,
        stage_of: &[u32],
        stages: u32,
    ) -> Self {
        let mut interp = Interp::with_capacity(prog.num_atoms());
        let mut decided_stage = FxHashMap::default();
        for (i, &atom) in prog.atoms().iter().enumerate() {
            if truth_true.contains(i) {
                interp.set_true(atom);
                decided_stage.insert(atom, stage_of[i]);
            } else if truth_false.contains(i) {
                interp.set_false(atom);
                decided_stage.insert(atom, stage_of[i]);
            }
        }
        EngineResult {
            interp,
            decided_stage,
            stages,
            stats: None,
        }
    }

    /// Truth value of an atom (`Unknown` for undecided or unmentioned).
    #[inline]
    pub fn value(&self, atom: AtomId) -> Truth {
        self.interp.value(atom)
    }

    /// Decision stage of an atom, if decided.
    pub fn stage_of(&self, atom: AtomId) -> Option<u32> {
        self.decided_stage.get(&atom).copied()
    }
}
