//! # `wfdl-wfs` — well-founded semantics engines
//!
//! The paper's primary contribution, made executable:
//!
//! * [`wp::WpEngine`] — the definitional `W_P = T_P ∪ ¬.U_P` least fixpoint
//!   with greatest-unfounded-set computation (Section 2.6), in both a
//!   stage-faithful and an accelerated regime;
//! * [`alternating::AlternatingEngine`] — Van Gelder's alternating fixpoint,
//!   an independent engine used for cross-validation and ablation;
//! * [`forward::ForwardEngine`] — the forward-proof operator `Ŵ_P`
//!   evaluated on chase segments (Definitions 5/7, Theorem 8);
//! * [`stratified`] — stratification test and perfect-model baseline \[1\];
//! * [`wcheck`] — demand-driven single-atom membership (Section 4's WCHECK,
//!   deterministically realized) with extractable, independently verifiable
//!   certificates;
//! * [`solver`] — the top-level `WFS(D, Σ)` API combining chase and engines
//!   with exactness reporting and a deepening heuristic.

#![warn(missing_docs)]

pub mod alternating;
pub mod dense;
pub mod forward;
pub mod result;
pub mod solver;
pub mod stable;
pub mod trace;
pub mod types;
pub mod stratified;
pub mod wcheck;
pub mod wp;

pub use alternating::AlternatingEngine;
pub use forward::{AliveMode, ForwardEngine};
pub use result::EngineResult;
pub use solver::{
    constraint_status, lower_with_constraints, solve, solve_stable, EngineKind, StabilityReport,
    WellFoundedModel, WfsOptions,
};
pub use stable::stable_models;
pub use trace::{StageTrace, TraceEntry};
pub use types::{atom_type, canonical_type_of, canonicalize, subtree_signature, type_census, AtomType, CanonTerm, CanonicalType, TypeCensus};
pub use stratified::{perfect_model, stratify, Stratification};
pub use wp::{StepMode, WpEngine};
