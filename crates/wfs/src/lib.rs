//! # `wfdl-wfs` — well-founded semantics engines
//!
//! The paper's primary contribution, made executable (see `README.md` in
//! this directory for the full engine-architecture overview):
//!
//! * [`scc::ModularEngine`] — SCC-condensation modular evaluation (the
//!   default): Tarjan's algorithm over the atom dependency graph,
//!   negation-free components by a flat semi-naive pass, the `W_P`
//!   machinery only on components with internal negation, lower-component
//!   verdicts substituted in as they resolve;
//! * [`wp::WpEngine`] — the definitional `W_P = T_P ∪ ¬.U_P` least fixpoint
//!   with greatest-unfounded-set computation (Section 2.6), in both a
//!   stage-faithful and an accelerated regime; also the modular engine's
//!   subsolver for recursive components;
//! * [`alternating::AlternatingEngine`] — Van Gelder's alternating fixpoint,
//!   an independent engine used for cross-validation and ablation;
//! * [`forward::ForwardEngine`] — the forward-proof operator `Ŵ_P`
//!   evaluated on chase segments (Definitions 5/7, Theorem 8);
//! * [`stratified`] — stratification test and perfect-model baseline \[1\];
//! * [`wcheck`] — demand-driven single-atom membership (Section 4's WCHECK,
//!   deterministically realized) with extractable, independently verifiable
//!   certificates;
//! * [`solver`] — the top-level `WFS(D, Σ)` API combining chase and engines
//!   with exactness reporting and a deepening heuristic.
//!
//! All engines read the storage layer's dense data layout directly: the
//! [`wfdl_storage::GroundProgram`] local atom ids and CSR occurrence
//! indexes, so the hot loops are flat array walks with Dowling–Gallier
//! counters — no hashing, and no per-engine copies of the program.

#![warn(missing_docs)]

pub mod alternating;
pub mod forward;
pub mod result;
pub mod scc;
pub mod solver;
pub mod stable;
pub mod stratified;
pub mod trace;
pub mod types;
pub mod wcheck;
pub mod wp;

pub use alternating::AlternatingEngine;
pub use forward::ForwardEngine;
pub use result::EngineResult;
pub use scc::{condensation, Condensation, ModularEngine, ModularMemo, ModularStats};
pub use solver::{
    constraint_status, constraint_status_sliced, lower_with_constraints, solve, solve_budgeted,
    solve_packaged, solve_packaged_budgeted, solve_packaged_resumed,
    solve_packaged_resumed_budgeted, solve_resumed, solve_resumed_budgeted,
    solve_sliced_packaged_budgeted, solve_stable, EngineKind, SolveOutput, SolveStats,
    StabilityReport, WellFoundedModel, WfsOptions,
};
pub use stable::stable_models;
pub use stratified::{perfect_model, stratify, Stratification};
pub use trace::{StageTrace, TraceEntry};
pub use types::{
    atom_type, canonical_type_of, canonicalize, subtree_signature, type_census, AtomType,
    CanonTerm, CanonicalType, TypeCensus,
};
pub use wp::{StepMode, WpEngine};
