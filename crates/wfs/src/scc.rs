//! SCC-modular well-founded evaluation, serial and parallel.
//!
//! The global fixpoint engines ([`crate::wp`], [`crate::alternating`])
//! re-solve the entire ground program every stage, even when negation is
//! confined to a tiny subcomponent. This module exploits the classical
//! modularity (splitting) property of the well-founded semantics instead:
//!
//! 1. build the **atom dependency graph** (an edge `head → body atom` for
//!    every rule, positive and negative alike) over the program's dense
//!    local atom ids;
//! 2. run Tarjan's algorithm; its emission order visits every strongly
//!    connected component **after** all components it depends on;
//! 3. evaluate components bottom-up, substituting the verdicts of lower
//!    components into each rule as it is considered:
//!    * a component with no internal negative edge and no undefined lower
//!      verdict in reach is **definite**: one flat semi-naive pass derives
//!      its true atoms and everything else in it is false — no unfounded-set
//!      computation at all;
//!    * otherwise the component is **recursive**: the `W_P` machinery runs
//!      on the (usually tiny) subprogram of the component's own rules, with
//!      undefined lower atoms carried as *assumed-unknown* inputs.
//!
//! On stratified-heavy workloads almost every component is definite, so the
//! whole model is computed in a single linear sweep — the measured speedups
//! in `benches/modular_vs_global.rs` come from exactly this.
//!
//! ## Parallel evaluation
//!
//! Components on the same topological wavefront of the condensation are
//! independent, so [`ModularEngine::with_threads`] evaluates them
//! concurrently: the component DAG is packed into a chunk plan — one
//! scheduler task per **chunk** of same-wavefront components, sized by
//! cumulative rule count — and a dependency-counting work queue over the
//! chunk DAG is executed by `std::thread::scope` workers against the
//! shared read-only [`GroundProgram`]. A worker evaluates a chunk's
//! components in ascending emission-ordinal order and publishes each
//! component's verdicts into per-atom slots before decrementing dependent
//! chunks' counters (release/acquire), so every component still observes
//! exactly the lower verdicts the serial engine would have substituted.
//! Because a
//! component's verdicts and its decision stage depend only on the
//! condensation (stage = emission ordinal + 1), the merged model is
//! **bit-identical to the serial engine regardless of thread count or
//! completion order** — pinned by `tests/parallel_agreement.rs`.
//!
//! The per-atom decision *stage* reported by this engine is the 1-based
//! ordinal of the component that decided it, which preserves the invariant
//! that stages are monotone along derivations but is **not** comparable to
//! the `W_P` stage arithmetic of Example 9 — use `EngineKind::WpLiteral`
//! for stage-faithful traces.

use crate::result::EngineResult;
use crate::wp::{StepMode, WpEngine};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use wfdl_core::budget::FaultSite;
use wfdl_core::fxhash::mix64 as mix;
use wfdl_core::{BitSet, Interp, SolveBudget, TruncationReason, Truth};
use wfdl_storage::{GroundProgram, GroundRule};

/// Below this much total work (`num_atoms + num_rules`), the automatic
/// thread count ([`ModularEngine::with_threads`] with `0`) stays serial: a
/// small program solves in well under a millisecond, less than the cost of
/// spawning workers.
const AUTO_PARALLEL_MIN_WORK: usize = 16_384;

/// Hard ceiling on the worker count, whatever the caller requested: wide
/// condensations can have tens of thousands of components, and an
/// unclamped `--threads` would try to spawn that many OS threads.
const MAX_THREADS: usize = 256;

/// Per-run statistics of the modular evaluation, exposed through
/// [`EngineResult::stats`] and the `wfdl` CLI's `--stats` flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModularStats {
    /// Number of strongly connected components of the dependency graph.
    pub components: usize,
    /// Components evaluated by the flat semi-naive pass.
    pub definite_components: usize,
    /// Components handed to the `W_P` subsolver.
    pub recursive_components: usize,
    /// Atoms in the largest component.
    pub largest_component: usize,
    /// Atoms evaluated inside recursive components.
    pub atoms_in_recursive: usize,
    /// Atoms left undefined by the run.
    pub unknown_atoms: usize,
    /// Components whose verdicts were copied from a previous solve
    /// (incremental runs only; see [`ModularMemo`]).
    pub components_reused: usize,
    /// Worker threads the solve ran with (`1` = the serial path).
    pub threads: usize,
    /// Topological wavefronts (levels) of the component DAG — the
    /// critical-path length in components. Computed on parallel runs only
    /// (`0` on the serial path, which never builds the component DAG).
    pub wavefronts: usize,
    /// Components on the widest wavefront — the peak parallelism the
    /// condensation offers. `0` on the serial path.
    pub max_wavefront: usize,
    /// Scheduler tasks of the parallel run: same-wavefront components are
    /// packed into chunks by cumulative rule count (see `plan_chunks`), and
    /// the work queue hands out whole chunks. `0` on the serial path,
    /// which schedules nothing.
    pub chunks: usize,
    /// Chunks that went through the shared work queue (parallel runs):
    /// wavefront roots plus chunks whose completion unblocked more than
    /// one dependent chunk.
    pub queued_chunks: usize,
    /// Chunks executed directly by the worker that made them ready,
    /// without a queue round-trip (parallel runs). Chains of
    /// single-dependent chunks — including ones full of memo-reused
    /// components — run back-to-back this way.
    pub inline_chunks: usize,
}

/// The condensation and per-component **input fingerprints** of one
/// modular solve, retained inside [`EngineResult::memo`] so the *next*
/// solve over a grown program can recognize unchanged components and copy
/// their verdicts instead of re-evaluating them.
///
/// A component's fingerprint digests everything its verdicts depend on:
/// its atom set (as universe [`wfdl_core::AtomId`]s, which are stable
/// across solves), fact membership, every rule heading one of its atoms
/// (bodies in atom-id space), and — for body atoms outside the component —
/// their already-decided truth values. Verdict reuse additionally requires
/// the exact atom sets to coincide, so a 64-bit collision can only confuse
/// two states of the *same* component's rules or inputs.
#[derive(Clone, Debug)]
pub struct ModularMemo {
    /// The condensation the solve ran over.
    pub condensation: Condensation,
    /// Per-component input fingerprint, indexed by emission ordinal.
    pub fingerprints: Vec<u64>,
}

/// Shared per-atom verdict slots. Each component's verdicts are written by
/// exactly one worker (components partition the atoms) and read by the
/// workers of higher components only after the writer released the
/// dependency edge, so relaxed element accesses are race-free; the
/// ordering lives in the scheduler's counters. On the serial path the
/// relaxed atomic ops compile to plain loads and stores.
///
/// `Truth::Unknown` doubles as "not yet decided", exactly like the former
/// `Vec<Truth>` state (sound because components are decided strictly
/// bottom-up).
struct TruthSlots(Vec<AtomicU8>);

impl TruthSlots {
    fn new(n: usize) -> Self {
        TruthSlots(
            (0..n)
                .map(|_| AtomicU8::new(encode(Truth::Unknown)))
                .collect(),
        )
    }

    #[inline]
    fn get(&self, local: usize) -> Truth {
        decode(self.0[local].load(Ordering::Relaxed))
    }

    #[inline]
    fn set(&self, local: usize, t: Truth) {
        self.0[local].store(encode(t), Ordering::Relaxed);
    }
}

#[inline]
fn encode(t: Truth) -> u8 {
    match t {
        Truth::False => 0,
        Truth::Unknown => 1,
        Truth::True => 2,
    }
}

#[inline]
fn decode(v: u8) -> Truth {
    match v {
        0 => Truth::False,
        1 => Truth::Unknown,
        _ => Truth::True,
    }
}

/// Per-worker scratch buffers, reused across components (most components
/// are singletons, so per-component allocation would dominate).
struct Scratch {
    /// rule id → slot in `missing` while a component is evaluated;
    /// `u32::MAX` elsewhere (reset after each component).
    rule_slot: Vec<u32>,
    rules: Vec<u32>,
    missing: Vec<u32>,
    queue: Vec<u32>,
    sorted_comp: Vec<u32>,
}

impl Scratch {
    fn new(num_rules: usize) -> Self {
        Scratch {
            rule_slot: vec![u32::MAX; num_rules],
            rules: Vec::new(),
            missing: Vec::new(),
            queue: Vec::new(),
            sorted_comp: Vec::new(),
        }
    }
}

/// The previous solve's artifacts, prepared for constant-time reuse
/// probes.
struct PrevSolve<'a> {
    result: &'a EngineResult,
    memo: &'a ModularMemo,
    /// Dense AtomId → previous-local-id map (`u32::MAX` = absent), built
    /// once so reuse probes are single array reads.
    local: Vec<u32>,
}

/// Everything a worker needs to evaluate components, all borrowed and
/// `Sync`: the program and condensation are read-only, verdicts go through
/// [`TruthSlots`], and each component owns its own fingerprint slot.
struct EvalCtx<'a> {
    prog: &'a GroundProgram,
    cond: &'a Condensation,
    is_fact: &'a BitSet,
    truth: &'a TruthSlots,
    fingerprints: &'a [AtomicU64],
    prev: Option<PrevSolve<'a>>,
    /// Resource budget of the run. Component-ordinal fault-injection sites
    /// ([`FaultSite::WfsComponent`]) fire here, so scheduler tests can prove
    /// a panic inside a chunk propagates out of `solve` instead of
    /// deadlocking the other workers, and budget trips stop the sweep at a
    /// component boundary.
    budget: &'a SolveBudget,
    /// Fixed estimate of the run's working-set bytes (truth slots,
    /// fingerprints, condensation arrays), charged against
    /// [`SolveBudget::mem_limit`].
    mem_estimate: usize,
}

/// What one component's evaluation contributed, merged into
/// [`ModularStats`] by the caller.
struct CompOutcome {
    definite: bool,
    reused: bool,
}

/// The SCC-modular WFS engine.
pub struct ModularEngine<'a> {
    prog: &'a GroundProgram,
    /// Requested worker count: `1` = serial (the default for direct engine
    /// users), `0` = auto, `n` = exactly `n` workers (capped at the
    /// component count).
    threads: usize,
    /// Deadline / cancellation / memory budget, checked at component
    /// boundaries (serial path) and chunk boundaries (parallel path).
    budget: SolveBudget,
}

impl<'a> ModularEngine<'a> {
    /// Prepares the engine for a ground program (serial evaluation).
    pub fn new(prog: &'a GroundProgram) -> Self {
        ModularEngine {
            prog,
            threads: 1,
            budget: SolveBudget::unlimited(),
        }
    }

    /// Attaches a resource budget. On a trip the sweep stops at a component
    /// (serial) or chunk (parallel) boundary: verdicts already published
    /// stay, every unevaluated atom reads [`Truth::Unknown`], and
    /// [`EngineResult::truncation`] records the reason. A truncated result
    /// carries no memo — its partial verdicts must never seed an
    /// incremental reuse.
    pub fn with_budget(mut self, budget: SolveBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Selects the worker count for [`ModularEngine::solve`]: `1` forces
    /// the serial path, `0` picks automatically
    /// (`std::thread::available_parallelism` for large programs, serial
    /// for small ones where spawn cost would dominate), any other `n`
    /// spawns `n` workers (capped at the component count and a hard
    /// ceiling of 256 — thread counts are a performance knob, not a
    /// resource grant). The computed model is bit-identical for every
    /// setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Computes the well-founded model component by component.
    pub fn solve(&self) -> EngineResult {
        self.solve_incremental(None)
    }

    fn resolve_threads(&self, num_components: usize) -> usize {
        if num_components == 0 {
            return 1;
        }
        let requested = match self.threads {
            0 => {
                if self.prog.num_atoms() + self.prog.num_rules() < AUTO_PARALLEL_MIN_WORK {
                    1
                } else {
                    std::thread::available_parallelism().map_or(1, |n| n.get())
                }
            }
            n => n,
        };
        requested.clamp(1, num_components).min(MAX_THREADS)
    }

    /// Computes the well-founded model, reusing verdicts from a previous
    /// solve where possible.
    ///
    /// `prev` is the ground program and engine result of the previous
    /// solve over the **same universe** (so atom ids align); it must carry
    /// a [`ModularMemo`] (i.e. come from this engine) for any reuse to
    /// happen. A component of the current program whose input fingerprint
    /// and atom set match a previous component has, by the modularity
    /// (splitting) property of the well-founded semantics, the same
    /// verdicts — they are copied and the component's evaluation skipped
    /// entirely. Everything else (new components, components with new
    /// rules or facts, components whose lower inputs changed) is evaluated
    /// normally. The number of reused components is reported in
    /// [`ModularStats::components_reused`].
    ///
    /// Verdict reuse composes with parallel evaluation: dirty components
    /// fan out across the workers while reused ones are a copy in the
    /// worker that reaches them (typically inline, without a queue
    /// round-trip).
    pub fn solve_incremental(&self, prev: Option<(&GroundProgram, &EngineResult)>) -> EngineResult {
        let prog = self.prog;
        let n = prog.num_atoms();
        let cond = condensation(prog);
        let num_components = cond.num_components();

        const ABSENT: u32 = u32::MAX;
        let prev = prev.and_then(|(pg, pr)| {
            let memo = pr.memo.as_ref()?;
            let size = pg.atoms().last().map_or(0, |a| a.index() + 1);
            let mut local = vec![ABSENT; size];
            for (i, &a) in pg.atoms().iter().enumerate() {
                local[a.index()] = i as u32;
            }
            Some(PrevSolve {
                result: pr,
                memo,
                local,
            })
        });

        let truth = TruthSlots::new(n);
        let mut is_fact = BitSet::with_capacity(n);
        for &f in prog.facts_local() {
            is_fact.insert(f as usize);
        }
        let fingerprints: Vec<AtomicU64> = (0..num_components).map(|_| AtomicU64::new(0)).collect();

        // Working-set estimate for the memory budget: one verdict byte per
        // atom, one fingerprint word per component, and the condensation's
        // three u32 arrays. Fixed for the whole run, so it is computed once.
        let mem_estimate = n
            + num_components * std::mem::size_of::<u64>()
            + (cond.comp_of.len() + cond.comp_atoms.len() + cond.comp_off.len())
                * std::mem::size_of::<u32>();

        let ctx = EvalCtx {
            prog,
            cond: &cond,
            is_fact: &is_fact,
            truth: &truth,
            fingerprints: &fingerprints,
            prev,
            budget: &self.budget,
            mem_estimate,
        };

        let threads = self.resolve_threads(num_components);
        let mut stats = ModularStats {
            components: num_components,
            largest_component: cond.iter().map(<[u32]>::len).max().unwrap_or(0),
            threads,
            ..Default::default()
        };

        let mut truncation: Option<TruncationReason> = None;
        if threads == 1 {
            // Serial path: emission order visits dependencies first, so a
            // plain sweep needs no scheduling state at all. An unbudgeted
            // run pays one branch per component; a budgeted one polls the
            // clock every `BUDGET_POLL_STRIDE` components.
            let mut scratch = Scratch::new(prog.num_rules());
            let budgeted = !self.budget.is_unlimited();
            for ord in 0..num_components as u32 {
                if budgeted {
                    if let Some(r) = trip_at_component(&ctx, ord) {
                        truncation = Some(r);
                        break;
                    }
                }
                let out = process_component(&ctx, ord, &mut scratch);
                merge_outcome(&mut stats, &out, cond.component(ord as usize).len());
            }
        } else {
            truncation = solve_parallel(&ctx, threads, &mut stats);
        }

        // Assemble the EngineResult over original atom ids. The decision
        // stage of a decided atom is its component's 1-based emission
        // ordinal — a function of the condensation alone, which is what
        // makes the parallel result bit-identical to the serial one.
        let mut interp = Interp::with_capacity(n);
        let cap = prog.atoms().last().map_or(0, |a| a.index() + 1);
        let mut decided_stage = crate::result::StageMap::with_capacity(cap);
        for a in 0..n {
            let atom = prog.atom_of_local(a as u32);
            match truth.get(a) {
                Truth::True => {
                    interp.set_true(atom);
                    decided_stage.insert(atom, cond.comp_of[a] + 1);
                }
                Truth::False => {
                    interp.set_false(atom);
                    decided_stage.insert(atom, cond.comp_of[a] + 1);
                }
                Truth::Unknown => stats.unknown_atoms += 1,
            }
        }
        // A truncated run publishes no memo: its fingerprints describe only
        // the components that actually ran, and letting a later incremental
        // solve copy verdicts from a partial sweep would be unsound.
        let memo = if truncation.is_some() {
            None
        } else {
            Some(ModularMemo {
                condensation: cond,
                fingerprints: fingerprints
                    .into_iter()
                    .map(AtomicU64::into_inner)
                    .collect(),
            })
        };
        EngineResult {
            interp,
            decided_stage,
            stages: num_components as u32,
            stats: Some(stats),
            memo,
            truncation,
        }
    }
}

/// How often the serial sweep polls the wall clock and memory budget, in
/// components. Fault sites still fire on every ordinal — injection points
/// must be exact — but `Instant::now` per singleton component would cost
/// more than evaluating the component.
const BUDGET_POLL_STRIDE: u32 = 64;

/// Serial-path budget check at the boundary before component `ord`:
/// fault-injection sites fire first (every ordinal), then the real budget
/// is polled every [`BUDGET_POLL_STRIDE`] components.
fn trip_at_component(ctx: &EvalCtx<'_>, ord: u32) -> Option<TruncationReason> {
    if let Some(r) = ctx.budget.fire_fault(FaultSite::WfsComponent(ord)) {
        return Some(r);
    }
    if ord % BUDGET_POLL_STRIDE == 0 {
        return ctx.budget.check(ctx.mem_estimate);
    }
    None
}

fn merge_outcome(stats: &mut ModularStats, out: &CompOutcome, comp_len: usize) {
    if out.reused {
        stats.components_reused += 1;
    }
    if out.definite {
        stats.definite_components += 1;
    } else {
        stats.recursive_components += 1;
        stats.atoms_in_recursive += comp_len;
    }
}

/// Evaluates one component whose dependencies are all decided: classify,
/// fingerprint, try memo reuse, then run the definite or recursive
/// evaluator. Publishes verdicts into `ctx.truth` and the fingerprint into
/// the component's slot. Free of `&mut` engine state — safe to call from
/// any worker as long as the scheduler ordered it after its dependencies.
fn process_component(ctx: &EvalCtx<'_>, ord: u32, scratch: &mut Scratch) -> CompOutcome {
    let prog = ctx.prog;
    let comp_of = &ctx.cond.comp_of;
    let comp = ctx.cond.component(ord as usize);
    let truth = ctx.truth;

    // Collect the component's rules and classify the component. Tarjan
    // assigned component ordinals in emission order, so `comp_of[b] == ord`
    // tests membership in this component.
    scratch.rules.clear();
    let mut definite = true;
    for &a in comp {
        for &rid in prog.rules_with_head_local(a) {
            let r = rid.index();
            scratch.rules.push(r as u32);
            for &b in prog.neg_local(r) {
                if comp_of[b as usize] == ord {
                    definite = false; // internal negation
                } else if truth.get(b as usize) == Truth::Unknown {
                    definite = false; // undefined lower input
                }
            }
            for &b in prog.pos_local(r) {
                if comp_of[b as usize] != ord && truth.get(b as usize) == Truth::Unknown {
                    definite = false; // undefined lower input
                }
            }
        }
    }

    // Fingerprint this component's inputs; try to reuse the previous
    // solve's verdicts before evaluating anything.
    let fp = fingerprint_component(
        prog,
        comp,
        ord,
        comp_of,
        truth,
        ctx.is_fact,
        &mut scratch.sorted_comp,
    );
    ctx.fingerprints[ord as usize].store(fp, Ordering::Relaxed);
    if let Some(prev) = &ctx.prev {
        if try_reuse(prog, comp, fp, prev, truth) {
            return CompOutcome {
                definite,
                reused: true,
            };
        }
    }

    if definite {
        eval_definite(prog, comp, ord, comp_of, ctx.is_fact, truth, scratch);
    } else {
        eval_recursive(prog, comp, ord, comp_of, ctx.is_fact, truth, &scratch.rules);
    }
    CompOutcome {
        definite,
        reused: false,
    }
}

/// Flat semi-naive evaluation of a negation-free (after substitution)
/// component: derivable atoms are true, the rest are false.
fn eval_definite(
    prog: &GroundProgram,
    comp: &[u32],
    ordinal: u32,
    comp_of: &[u32],
    is_fact: &BitSet,
    truth: &TruthSlots,
    scratch: &mut Scratch,
) {
    // missing[i] = internal positive atoms of rules[i] not yet true;
    // u32::MAX marks a dead rule (an external literal is unsatisfied).
    let Scratch {
        rule_slot,
        rules,
        missing,
        queue,
        ..
    } = scratch;
    missing.clear();
    queue.clear();

    let derive = |a: u32, queue: &mut Vec<u32>| {
        if truth.get(a as usize) != Truth::True {
            truth.set(a as usize, Truth::True);
            queue.push(a);
        }
    };

    // Phase 1: count every rule's missing internal atoms BEFORE any
    // derivation. Internal atoms are all undecided at this point, so
    // the counts are consistent; firing while counting would let a
    // later rule see an already-derived atom and then receive a queue
    // decrement for the same atom — deriving unfounded atoms.
    for (i, &r) in rules.iter().enumerate() {
        rule_slot[r as usize] = i as u32;
        let r = r as usize;
        let mut m = 0u32;
        let mut dead = false;
        for &b in prog.pos_local(r) {
            if comp_of[b as usize] == ordinal {
                m += 1; // internal: wait for derivation
            } else if truth.get(b as usize) != Truth::True {
                dead = true; // external and not true ⇒ false here
            }
        }
        // All negative atoms are external (definite components have no
        // internal negation) and decided: true kills the rule.
        if prog
            .neg_local(r)
            .iter()
            .any(|&b| truth.get(b as usize) == Truth::True)
        {
            dead = true;
        }
        missing.push(if dead { u32::MAX } else { m });
    }
    // Phase 2: fire rules with no internal prerequisites, seed facts,
    // then propagate.
    for (i, &r) in rules.iter().enumerate() {
        if missing[i] == 0 {
            derive(prog.head_local(r as usize), queue);
        }
    }
    for &a in comp {
        if is_fact.contains(a as usize) {
            derive(a, queue);
        }
    }
    while let Some(a) = queue.pop() {
        for &rid in prog.rules_with_pos_local(a) {
            let slot = rule_slot[rid.index()];
            if slot == u32::MAX {
                continue; // rule belongs to a different component
            }
            let m = &mut missing[slot as usize];
            if *m == u32::MAX || *m == 0 {
                continue;
            }
            // An atom may occur only once per body (GroundRule dedups).
            *m -= 1;
            if *m == 0 {
                derive(prog.head_local(rid.index()), queue);
            }
        }
    }
    for &a in comp {
        if truth.get(a as usize) != Truth::True {
            truth.set(a as usize, Truth::False);
        }
    }
    for &r in rules.iter() {
        rule_slot[r as usize] = u32::MAX;
    }
}

/// Full `W_P` evaluation of a component whose verdicts may be mutually
/// recursive through negation (or depend on undefined lower atoms).
fn eval_recursive(
    prog: &GroundProgram,
    comp: &[u32],
    ordinal: u32,
    comp_of: &[u32],
    is_fact: &BitSet,
    truth: &TruthSlots,
    rules: &[u32],
) {
    // Subprogram atoms: the component plus every undefined external
    // atom its rules mention (carried as assumed-unknown inputs).
    // Local ids are sorted, so sorting them sorts the atom ids too.
    let mut sub_atoms: Vec<u32> = comp.to_vec();
    for &r in rules {
        let r = r as usize;
        for &b in prog.pos_local(r).iter().chain(prog.neg_local(r)) {
            if comp_of[b as usize] != ordinal && truth.get(b as usize) == Truth::Unknown {
                sub_atoms.push(b);
            }
        }
    }
    sub_atoms.sort_unstable();
    sub_atoms.dedup();

    // Partially evaluate the component's rules against the decided
    // lower verdicts, building a standalone sub-GroundProgram whose
    // atom universe is `sub_atoms` (local ids are ascending, so the
    // sub program's local numbering is the position in `sub_atoms`).
    let atom_id = |b: u32| prog.atom_of_local(b);
    let mut sub_rules: Vec<GroundRule> = Vec::with_capacity(rules.len());
    'rules: for &r in rules {
        let r = r as usize;
        let mut pos = Vec::new();
        for &b in prog.pos_local(r) {
            if comp_of[b as usize] == ordinal {
                pos.push(atom_id(b));
            } else {
                match truth.get(b as usize) {
                    Truth::True => {}                       // satisfied: drop
                    Truth::False => continue 'rules,        // dead rule
                    Truth::Unknown => pos.push(atom_id(b)), // assumed input
                }
            }
        }
        let mut neg = Vec::new();
        for &b in prog.neg_local(r) {
            if comp_of[b as usize] == ordinal {
                neg.push(atom_id(b));
            } else {
                match truth.get(b as usize) {
                    Truth::False => {}                      // satisfied: drop
                    Truth::True => continue 'rules,         // dead rule
                    Truth::Unknown => neg.push(atom_id(b)), // assumed input
                }
            }
        }
        sub_rules.push(GroundRule::new(atom_id(prog.head_local(r)), pos, neg));
    }

    let fact_ids: Vec<_> = comp
        .iter()
        .filter(|&&a| is_fact.contains(a as usize))
        .map(|&a| atom_id(a))
        .collect();
    let assumed: Vec<u32> = sub_atoms
        .iter()
        .enumerate()
        .filter(|&(_, &b)| comp_of[b as usize] != ordinal)
        .map(|(i, _)| i as u32)
        .collect();

    let atom_ids: Vec<_> = sub_atoms.iter().map(|&b| atom_id(b)).collect();
    let sub = GroundProgram::build_with_atom_universe(sub_rules, fact_ids, atom_ids);
    let result = WpEngine::new(&sub)
        .with_assumed_unknown(assumed)
        .solve(StepMode::Accelerated);

    for &a in comp {
        truth.set(a as usize, result.value(prog.atom_of_local(a)));
    }
}

/// Digests a component's inputs into a 64-bit fingerprint: atom ids and
/// fact bits in ascending-id order, every rule heading a component atom
/// (bodies in atom-id space), and the decided truth of each external body
/// atom. Deterministic across solves because universe atom ids are stable
/// and ground-rule bodies are stored sorted.
fn fingerprint_component(
    prog: &GroundProgram,
    comp: &[u32],
    ord: u32,
    comp_of: &[u32],
    truth: &TruthSlots,
    is_fact: &BitSet,
    sorted_comp: &mut Vec<u32>,
) -> u64 {
    sorted_comp.clear();
    sorted_comp.extend_from_slice(comp);
    // Local ids increase with atom ids, so this visits atoms in a
    // solve-independent order even though Tarjan's emission order within
    // the component is not.
    sorted_comp.sort_unstable();
    let mut h = mix(0, comp.len() as u64);
    let body = |mut h: u64, atoms: &[u32]| {
        h = mix(h, atoms.len() as u64);
        for &b in atoms {
            h = mix(h, prog.atom_of_local(b).index() as u64);
            let tag = if comp_of[b as usize] == ord {
                3 // internal: undecided by construction
            } else {
                match truth.get(b as usize) {
                    Truth::False => 0,
                    Truth::Unknown => 1,
                    Truth::True => 2,
                }
            };
            h = mix(h, tag);
        }
        h
    };
    for &a in sorted_comp.iter() {
        h = mix(h, prog.atom_of_local(a).index() as u64);
        h = mix(h, is_fact.contains(a as usize) as u64);
        let heading = prog.rules_with_head_local(a);
        h = mix(h, heading.len() as u64);
        for &rid in heading {
            let r = rid.index();
            h = body(h, prog.pos_local(r));
            h = body(h, prog.neg_local(r));
        }
    }
    h
}

/// Copies the previous solve's verdicts for `comp` if it is provably the
/// same component with the same inputs: every atom must map into one
/// previous component of identical size, and the input fingerprints must
/// agree. Returns whether the reuse happened.
fn try_reuse(
    prog: &GroundProgram,
    comp: &[u32],
    fp: u64,
    prev: &PrevSolve<'_>,
    truth: &TruthSlots,
) -> bool {
    const ABSENT: u32 = u32::MAX;
    let memo = prev.memo;
    let lookup = |local: u32| -> Option<u32> {
        match prev.local.get(prog.atom_of_local(local).index()) {
            Some(&l) if l != ABSENT => Some(l),
            _ => None,
        }
    };
    let Some(first_old) = lookup(comp[0]) else {
        return false; // atom is new: the component cannot be a reuse
    };
    let old_ord = memo.condensation.comp_of[first_old as usize] as usize;
    if memo.fingerprints[old_ord] != fp || memo.condensation.component(old_ord).len() != comp.len()
    {
        return false;
    }
    for &a in comp {
        match lookup(a) {
            Some(l) if memo.condensation.comp_of[l as usize] as usize == old_ord => {}
            _ => return false,
        }
    }
    for &a in comp {
        truth.set(a as usize, prev.result.value(prog.atom_of_local(a)));
    }
    true
}

// ======================================================================
// Parallel scheduler
// ======================================================================

/// The condensation's component-level DAG: deduplicated dependency edges
/// in CSR form (`successors(d)` = components that depend on `d`) and the
/// topological wavefront profile. Scheduling itself happens one level up,
/// on the [`ChunkPlan`] derived from this graph.
struct CompGraph {
    succ_off: Vec<u32>,
    succ: Vec<u32>,
    /// Wavefront level per component (longest dependency path below it).
    level: Vec<u32>,
    /// Number of wavefronts (levels); the critical path in components.
    levels: usize,
    /// Components on the widest wavefront.
    max_width: usize,
}

impl CompGraph {
    fn successors(&self, ord: u32) -> &[u32] {
        let o = ord as usize;
        &self.succ[self.succ_off[o] as usize..self.succ_off[o + 1] as usize]
    }
}

/// Calls `f(d)` once per **distinct** lower component `d` that component
/// `c` depends on. `stamp[d] == c` marks `d` as already reported for this
/// `c`; since callers visit ordinals in strictly increasing order, one
/// stamp array serves a whole sweep without resets.
fn for_each_dep(
    prog: &GroundProgram,
    cond: &Condensation,
    c: u32,
    stamp: &mut [u32],
    mut f: impl FnMut(u32),
) {
    for &a in cond.component(c as usize) {
        for &rid in prog.rules_with_head_local(a) {
            let r = rid.index();
            for &b in prog.pos_local(r).iter().chain(prog.neg_local(r)) {
                let d = cond.comp_of[b as usize];
                if d != c && stamp[d as usize] != c {
                    stamp[d as usize] = c;
                    f(d);
                }
            }
        }
    }
}

/// Builds the [`CompGraph`] by scanning every rule body once per pass.
/// Emission ordinals are topological (dependencies get smaller ordinals),
/// so stamping with the dependent's ordinal dedups edges without a sort
/// and wavefront levels resolve in one ascending sweep.
fn comp_graph(prog: &GroundProgram, cond: &Condensation) -> CompGraph {
    let ncomp = cond.num_components();
    let mut succ_count = vec![0u32; ncomp];
    let mut level = vec![0u32; ncomp];
    const UNSEEN: u32 = u32::MAX;
    let mut stamp = vec![UNSEEN; ncomp];

    // One body scan collects the deduped edge list; the successor CSR is
    // then a counting-sort of that (much smaller) list by dependency.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for c in 0..ncomp as u32 {
        let mut lvl = 0u32;
        for_each_dep(prog, cond, c, &mut stamp, |d| {
            succ_count[d as usize] += 1;
            lvl = lvl.max(level[d as usize] + 1);
            edges.push((d, c));
        });
        level[c as usize] = lvl;
    }

    let mut succ_off = Vec::with_capacity(ncomp + 1);
    let mut acc = 0u32;
    succ_off.push(0);
    for &c in &succ_count {
        acc += c;
        succ_off.push(acc);
    }
    let mut succ = vec![0u32; acc as usize];
    let mut fill: Vec<u32> = succ_off[..ncomp].to_vec();
    for (d, c) in edges {
        succ[fill[d as usize] as usize] = c;
        fill[d as usize] += 1;
    }

    let levels = level.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
    let mut width = vec![0usize; levels];
    for &l in &level {
        width[l as usize] += 1;
    }
    CompGraph {
        succ_off,
        succ,
        level,
        levels,
        max_width: width.into_iter().max().unwrap_or(0),
    }
}

/// Floor of the chunk-size target, in cumulative rules: below this, task
/// handoff overhead (an atomic per dependency edge plus an occasional
/// queue crossing) is comparable to the evaluation itself, so small
/// wavefronts collapse into a single task.
const CHUNK_RULES_MIN: usize = 2_048;

/// Ceiling of the chunk-size target: past this, bigger chunks stop
/// amortizing anything and only make the tail of a wavefront lumpier.
const CHUNK_RULES_MAX: usize = 8_192;

/// The unit of parallel scheduling: one task per **chunk** of components.
///
/// Components on the same wavefront level are mutually independent, so any
/// contiguous run of them (in emission-ordinal order) can be evaluated by
/// one worker without internal synchronization. `plan_chunks` packs each
/// level into chunks of roughly `level_rules / (4·threads)` cumulative
/// rules, clamped to [`CHUNK_RULES_MIN`]..=[`CHUNK_RULES_MAX`] — dependency
/// counting then runs over per-chunk atomics instead of per-component
/// ones, which is what makes fine-grained condensations (tens of thousands
/// of singleton components) scale instead of drowning in queue traffic.
///
/// Chunks never span levels and are numbered level by level, so chunk ids
/// are a topological order of the chunk DAG and every dependency edge
/// points from a smaller id to a larger one.
struct ChunkPlan {
    /// Component ordinals, concatenated per chunk; ascending within each
    /// chunk, grouped by wavefront level across chunks.
    comps: Vec<u32>,
    /// CSR offsets into `comps`, `num_chunks() + 1` entries.
    off: Vec<u32>,
    /// Deduplicated chunk-level dependency edges, successor CSR.
    succ_off: Vec<u32>,
    succ: Vec<u32>,
    /// Distinct predecessor chunks per chunk — the scheduler's initial
    /// dependency counters.
    indegree: Vec<u32>,
}

impl ChunkPlan {
    fn num_chunks(&self) -> usize {
        self.off.len() - 1
    }

    fn chunk(&self, k: u32) -> &[u32] {
        let k = k as usize;
        &self.comps[self.off[k] as usize..self.off[k + 1] as usize]
    }

    fn successors(&self, k: u32) -> &[u32] {
        let k = k as usize;
        &self.succ[self.succ_off[k] as usize..self.succ_off[k + 1] as usize]
    }
}

/// Packs the condensation into scheduler chunks (see [`ChunkPlan`]).
///
/// A component weighs its rule count plus one, so rule-free components
/// (pure facts, isolated atoms) still fill chunks instead of producing
/// unboundedly long ones. The per-level target divides the level across
/// `4·threads` chunks — enough slack for load balancing without reverting
/// to per-component granularity — and the clamp keeps tasks coarse on
/// levels too small to be worth splitting at all.
fn plan_chunks(
    prog: &GroundProgram,
    cond: &Condensation,
    graph: &CompGraph,
    threads: usize,
) -> ChunkPlan {
    let ncomp = cond.num_components();
    let weight = |c: u32| -> usize {
        cond.component(c as usize)
            .iter()
            .map(|&a| prog.rules_with_head_local(a).len())
            .sum::<usize>()
            + 1
    };

    // Counting sort by level: stable, so ordinals stay ascending inside
    // each level — the order the serial path would visit them in.
    let nlevels = graph.levels;
    let mut level_off = vec![0u32; nlevels + 1];
    for &l in &graph.level {
        level_off[l as usize + 1] += 1;
    }
    for l in 0..nlevels {
        level_off[l + 1] += level_off[l];
    }
    let mut by_level = vec![0u32; ncomp];
    let mut fill = level_off.clone();
    for c in 0..ncomp as u32 {
        let l = graph.level[c as usize] as usize;
        by_level[fill[l] as usize] = c;
        fill[l] += 1;
    }

    let mut comps = Vec::with_capacity(ncomp);
    let mut off: Vec<u32> = vec![0];
    let mut chunk_of = vec![0u32; ncomp];
    for l in 0..nlevels {
        let lvl = &by_level[level_off[l] as usize..level_off[l + 1] as usize];
        let level_rules: usize = lvl.iter().map(|&c| weight(c)).sum();
        let target = (level_rules / (4 * threads).max(1)).clamp(CHUNK_RULES_MIN, CHUNK_RULES_MAX);
        let mut acc = 0usize;
        for &c in lvl {
            if acc >= target {
                off.push(comps.len() as u32);
                acc = 0;
            }
            chunk_of[c as usize] = off.len() as u32 - 1;
            comps.push(c);
            acc += weight(c);
        }
        // Chunks never span levels: close the level's trailing chunk.
        if comps.len() as u32 > off.last().copied().unwrap_or(0) {
            off.push(comps.len() as u32);
        }
    }
    let nchunks = off.len() - 1;

    // Project the deduped component edges onto chunks. Levels order chunk
    // ids topologically, so every surviving edge satisfies `kd < kc`;
    // sort-dedup collapses the many component edges that land on the same
    // chunk pair.
    let mut edges: Vec<u64> = Vec::new();
    for d in 0..ncomp as u32 {
        let kd = chunk_of[d as usize] as u64;
        for &c in graph.successors(d) {
            let kc = chunk_of[c as usize] as u64;
            if kd != kc {
                edges.push((kd << 32) | kc);
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();

    let mut succ_count = vec![0u32; nchunks];
    let mut indegree = vec![0u32; nchunks];
    for &e in &edges {
        succ_count[(e >> 32) as usize] += 1;
        indegree[(e & 0xffff_ffff) as usize] += 1;
    }
    let mut succ_off = Vec::with_capacity(nchunks + 1);
    let mut acc = 0u32;
    succ_off.push(0);
    for &n in &succ_count {
        acc += n;
        succ_off.push(acc);
    }
    let mut succ = vec![0u32; acc as usize];
    let mut fill: Vec<u32> = succ_off[..nchunks].to_vec();
    for &e in &edges {
        let kd = (e >> 32) as usize;
        succ[fill[kd] as usize] = (e & 0xffff_ffff) as u32;
        fill[kd] += 1;
    }

    ChunkPlan {
        comps,
        off,
        succ_off,
        succ,
        indegree,
    }
}

/// Shared scheduler state of one parallel solve. All ids are **chunk**
/// ids into the run's [`ChunkPlan`].
struct Scheduler<'a> {
    plan: &'a ChunkPlan,
    /// Ready chunks that no worker has claimed inline. Order is
    /// irrelevant for the result (verdicts land in per-component slots).
    queue: Mutex<Vec<u32>>,
    ready: Condvar,
    /// Chunks not yet evaluated; `0` wakes and terminates everyone.
    remaining: AtomicUsize,
    /// Live dependency counters, seeded from `plan.indegree`.
    indegree: Vec<AtomicU32>,
    queued: AtomicUsize,
    /// Set by [`AbortOnPanic`] when a worker unwinds: tells everyone
    /// else to stop waiting for chunks that will never complete.
    aborted: AtomicBool,
    /// First budget trip observed by any worker, encoded as
    /// `TruncationReason as u32 + 1` (`0` = none). A tripped chunk's
    /// out-edges are never released, so dependents of unevaluated
    /// components stay unevaluated — every verdict that *was* published is
    /// exactly the complete run's value.
    tripped: AtomicU32,
}

impl Scheduler<'_> {
    /// Records the first budget trip and wakes every idle worker so the
    /// scope can join. Later trips lose the race and are dropped — the
    /// first reason is the one reported, matching the serial sweep.
    fn trip(&self, reason: TruncationReason) {
        if self
            .tripped
            .compare_exchange(0, reason as u32 + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            let _q = self.queue.lock();
            self.ready.notify_all();
        }
    }

    /// The first recorded trip, if any.
    fn trip_reason(&self) -> Option<TruncationReason> {
        TruncationReason::from_index(self.tripped.load(Ordering::Acquire))
    }
    /// Shares a batch of ready chunks with the other workers — one
    /// lock acquisition regardless of batch size.
    fn push_batch(&self, items: &[u32]) {
        if items.is_empty() {
            return;
        }
        // Poisoning here means another worker panicked; that panic is
        // re-raised at join, so recovering the queue data is safe (it is
        // discarded with the scope). Same for every lock below.
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.extend_from_slice(items);
        drop(q);
        self.queued.fetch_add(items.len(), Ordering::Relaxed);
        if items.len() == 1 {
            self.ready.notify_one();
        } else {
            self.ready.notify_all();
        }
    }

    /// Blocks until work is ready or everything is done. Returns one
    /// chunk and moves a fair share of the remaining ready work into
    /// the caller's private `backlog`, so small-chunk cascades don't
    /// take the lock once per chunk.
    fn pop_batch(&self, threads: usize, backlog: &mut Vec<u32>) -> Option<u32> {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(ord) = q.pop() {
                let extra = (q.len() / threads).min(64);
                let at = q.len() - extra;
                backlog.extend(q.drain(at..));
                return Some(ord);
            }
            if self.remaining.load(Ordering::Acquire) == 0
                || self.aborted.load(Ordering::Acquire)
                || self.tripped.load(Ordering::Acquire) != 0
            {
                return None;
            }
            q = self.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Unblocks every idle worker if its thread unwinds: without this, a
/// panic inside one component's evaluation would leave `remaining`
/// nonzero forever, the other workers asleep on the condvar, and
/// `std::thread::scope` joining a deadlock instead of propagating the
/// panic.
struct AbortOnPanic<'a, 'b>(&'a Scheduler<'b>);

impl Drop for AbortOnPanic<'_, '_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.aborted.store(true, Ordering::Release);
            // The queue mutex may be poisoned by the same panic; waking
            // the sleepers matters, the guard does not.
            let _q = self.0.queue.lock();
            self.0.ready.notify_all();
        }
    }
}

/// Worker-side partial stats, merged under a mutex once per worker.
#[derive(Default)]
struct PartialStats {
    definite: usize,
    recursive: usize,
    atoms_in_recursive: usize,
    reused: usize,
    inline_run: usize,
}

/// Evaluates all components with `threads` scoped workers over a
/// dependency-counting topological wavefront queue of **chunks** (see
/// [`ChunkPlan`]). A worker that claims a chunk evaluates its components
/// in ascending ordinal order — they share a wavefront level, so none
/// depends on another. Verdict publication order: a worker's relaxed
/// truth stores happen-before any dependent's reads because every chunk
/// edge is released by `fetch_sub(AcqRel)` on the dependent's counter
/// (and queue handoffs add a mutex in between), and a chunk edge exists
/// wherever a component edge crosses chunks.
fn solve_parallel(
    ctx: &EvalCtx<'_>,
    threads: usize,
    stats: &mut ModularStats,
) -> Option<TruncationReason> {
    let graph = comp_graph(ctx.prog, ctx.cond);
    let plan = plan_chunks(ctx.prog, ctx.cond, &graph, threads);
    let nchunks = plan.num_chunks();
    let sched = Scheduler {
        plan: &plan,
        queue: Mutex::new(Vec::new()),
        ready: Condvar::new(),
        remaining: AtomicUsize::new(nchunks),
        indegree: plan.indegree.iter().map(|&d| AtomicU32::new(d)).collect(),
        queued: AtomicUsize::new(0),
        aborted: AtomicBool::new(false),
        tripped: AtomicU32::new(0),
    };
    let budgeted = !ctx.budget.is_unlimited();
    // Seed the wavefront roots in one batch.
    let roots: Vec<u32> = (0..nchunks as u32)
        .filter(|&k| plan.indegree[k as usize] == 0)
        .collect();
    sched.push_batch(&roots);

    let totals: Mutex<PartialStats> = Mutex::new(PartialStats::default());
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let _abort_guard = AbortOnPanic(&sched);
                    let mut scratch = Scratch::new(ctx.prog.num_rules());
                    let mut local = PartialStats::default();
                    // Chunks this worker may run without touching the shared
                    // queue: one chained dependent per finished chunk plus
                    // the fair share `pop_batch` handed over.
                    let mut backlog: Vec<u32> = Vec::new();
                    let mut share: Vec<u32> = Vec::new();
                    loop {
                        let k = match backlog.pop() {
                            Some(k) => k,
                            None => match sched.pop_batch(threads, &mut backlog) {
                                Some(k) => k,
                                None => break,
                            },
                        };
                        // Chunk-boundary trip point. A chunk claimed after a
                        // trip is abandoned unevaluated, and a chunk whose own
                        // check trips never releases its out-edges — so no
                        // component ever runs with an unevaluated dependency,
                        // and every published verdict is final.
                        if budgeted {
                            if sched.tripped.load(Ordering::Acquire) != 0 {
                                break;
                            }
                            if let Some(r) = ctx.budget.check(ctx.mem_estimate) {
                                sched.trip(r);
                                break;
                            }
                        }
                        let mut completed = true;
                        for &ord in sched.plan.chunk(k) {
                            // Per-ordinal fault site: exact injection points for
                            // the robustness harness (panic faults unwind through
                            // `AbortOnPanic`; trip faults stop this chunk before
                            // its edges are released).
                            if budgeted {
                                if let Some(r) = ctx.budget.fire_fault(FaultSite::WfsComponent(ord))
                                {
                                    sched.trip(r);
                                    completed = false;
                                    break;
                                }
                            }
                            let out = process_component(ctx, ord, &mut scratch);
                            if out.reused {
                                local.reused += 1;
                            }
                            if out.definite {
                                local.definite += 1;
                            } else {
                                local.recursive += 1;
                                local.atoms_in_recursive += ctx.cond.component(ord as usize).len();
                            }
                        }
                        if !completed {
                            break;
                        }
                        // Publish: release this chunk's out-edges. The first
                        // dependent that becomes ready is chained inline; the
                        // rest go to the shared queue in one batch.
                        share.clear();
                        let mut chained = false;
                        for &succ in sched.plan.successors(k) {
                            if sched.indegree[succ as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                if chained {
                                    share.push(succ);
                                } else {
                                    chained = true;
                                    backlog.push(succ);
                                    local.inline_run += 1;
                                }
                            }
                        }
                        sched.push_batch(&share);
                        if sched.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            // Last chunk: wake every idle worker so the scope
                            // can join.
                            let _q = sched.queue.lock().unwrap_or_else(PoisonError::into_inner);
                            sched.ready.notify_all();
                        }
                    }
                    let mut t = totals.lock().unwrap_or_else(PoisonError::into_inner);
                    t.definite += local.definite;
                    t.recursive += local.recursive;
                    t.atoms_in_recursive += local.atoms_in_recursive;
                    t.reused += local.reused;
                    t.inline_run += local.inline_run;
                })
            })
            .collect();
        // Join explicitly and rethrow the first worker's own payload —
        // the scope's generic "a scoped thread panicked" would lose the
        // original message before `catch_unwind` at the engine boundary.
        let mut first_panic = None;
        for w in workers {
            if let Err(payload) = w.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });

    let totals = totals.into_inner().unwrap_or_else(PoisonError::into_inner);
    stats.definite_components = totals.definite;
    stats.recursive_components = totals.recursive;
    stats.atoms_in_recursive = totals.atoms_in_recursive;
    stats.components_reused = totals.reused;
    stats.chunks = nchunks;
    stats.inline_chunks = totals.inline_run;
    stats.queued_chunks = sched.queued.load(Ordering::Relaxed);
    stats.wavefronts = graph.levels;
    stats.max_wavefront = graph.max_width;
    sched.trip_reason()
}

/// Tarjan's strongly-connected-components algorithm (iterative) over the
/// atom dependency graph `head → body atom`. Components are stored in
/// **emission order**, which visits each component after everything it
/// depends on (reverse topological order of the condensation), in a flat
/// CSR layout — no per-component allocation even when every component is
/// a singleton (the common case on stratified workloads).
#[derive(Clone, Debug)]
pub struct Condensation {
    /// Local atom id → component ordinal (emission order).
    pub comp_of: Vec<u32>,
    /// Component atoms, concatenated in emission order.
    comp_atoms: Vec<u32>,
    /// CSR offsets into `comp_atoms`, `num_components() + 1` entries.
    comp_off: Vec<u32>,
}

impl Condensation {
    /// Number of strongly connected components.
    pub fn num_components(&self) -> usize {
        self.comp_off.len() - 1
    }

    /// The atoms of component `c` (emission order within the component).
    pub fn component(&self, c: usize) -> &[u32] {
        &self.comp_atoms[self.comp_off[c] as usize..self.comp_off[c + 1] as usize]
    }

    /// Iterates components in emission (dependencies-first) order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.num_components()).map(|c| self.component(c))
    }
}

/// Computes the [`Condensation`] of a ground program's dependency graph.
pub fn condensation(prog: &GroundProgram) -> Condensation {
    let n = prog.num_atoms();

    // Flat adjacency CSR: successors of an atom are the body atoms of the
    // rules it heads.
    let mut counts = vec![0u32; n];
    for a in 0..n as u32 {
        let deg: usize = prog
            .rules_with_head_local(a)
            .iter()
            .map(|rid| prog.pos_local(rid.index()).len() + prog.neg_local(rid.index()).len())
            .sum();
        counts[a as usize] = deg as u32;
    }
    let mut adj_off = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    adj_off.push(0);
    for &c in &counts {
        acc += c;
        adj_off.push(acc);
    }
    let mut adj = vec![0u32; acc as usize];
    {
        let mut fill: Vec<u32> = adj_off[..n].to_vec();
        for a in 0..n as u32 {
            for &rid in prog.rules_with_head_local(a) {
                let r = rid.index();
                for &b in prog.pos_local(r).iter().chain(prog.neg_local(r)) {
                    adj[fill[a as usize] as usize] = b;
                    fill[a as usize] += 1;
                }
            }
        }
    }

    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = BitSet::with_capacity(n);
    let mut stack: Vec<u32> = Vec::new();
    let mut comp_of = vec![UNVISITED; n];
    let mut comp_atoms: Vec<u32> = Vec::with_capacity(n);
    let mut comp_off: Vec<u32> = vec![0];
    let mut next_index = 0u32;
    // Explicit DFS frames: (node, cursor into adj).
    let mut frames: Vec<(u32, u32)> = Vec::new();

    for v0 in 0..n as u32 {
        if index[v0 as usize] != UNVISITED {
            continue;
        }
        index[v0 as usize] = next_index;
        low[v0 as usize] = next_index;
        next_index += 1;
        stack.push(v0);
        on_stack.insert(v0 as usize);
        frames.push((v0, adj_off[v0 as usize]));

        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor < adj_off[v as usize + 1] {
                let w = adj[*cursor as usize];
                *cursor += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack.insert(w as usize);
                    frames.push((w, adj_off[w as usize]));
                } else if on_stack.contains(w as usize) {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    let ordinal = (comp_off.len() - 1) as u32;
                    loop {
                        // Tarjan invariant: `v` stays on the stack
                        // until its own SCC is emitted right here.
                        #[allow(clippy::expect_used)]
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack.remove(w as usize);
                        comp_of[w as usize] = ordinal;
                        comp_atoms.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp_off.push(comp_atoms.len() as u32);
                }
            }
        }
    }

    Condensation {
        comp_of,
        comp_atoms,
        comp_off,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alternating::AlternatingEngine;
    use crate::wp::{StepMode, WpEngine};
    use wfdl_core::AtomId;
    use wfdl_storage::{GroundProgramBuilder, GroundRule};

    fn a(i: usize) -> AtomId {
        AtomId::from_index(i)
    }

    fn agree_with_global(b: &GroundProgramBuilder) {
        let p = b.clone().finish();
        let modular = ModularEngine::new(&p).solve();
        let wp = WpEngine::new(&p).solve(StepMode::Accelerated);
        let alt = AlternatingEngine::new(&p).solve();
        for &atom in p.atoms() {
            assert_eq!(modular.value(atom), wp.value(atom), "vs Wp on {atom:?}");
            assert_eq!(modular.value(atom), alt.value(atom), "vs Alt on {atom:?}");
        }
        agree_with_parallel(&p, &modular);
    }

    /// Parallel runs at several worker counts must reproduce the serial
    /// result bit for bit: values, decision stages, stage count and the
    /// semantic (scheduling-independent) stats.
    fn agree_with_parallel(p: &GroundProgram, serial: &EngineResult) {
        for threads in [2usize, 3, 8] {
            let par = ModularEngine::new(p).with_threads(threads).solve();
            assert_eq!(par.stages, serial.stages, "{threads} threads");
            for &atom in p.atoms() {
                assert_eq!(
                    par.value(atom),
                    serial.value(atom),
                    "{threads} threads, value of {atom:?}"
                );
                assert_eq!(
                    par.stage_of(atom),
                    serial.stage_of(atom),
                    "{threads} threads, stage of {atom:?}"
                );
            }
            let (ps, ss) = (par.stats.unwrap(), serial.stats.unwrap());
            assert_eq!(ps.components, ss.components);
            assert_eq!(ps.definite_components, ss.definite_components);
            assert_eq!(ps.recursive_components, ss.recursive_components);
            assert_eq!(ps.unknown_atoms, ss.unknown_atoms);
            assert_eq!(ps.components_reused, ss.components_reused);
            let pm = par.memo.as_ref().unwrap();
            let sm = serial.memo.as_ref().unwrap();
            assert_eq!(pm.fingerprints, sm.fingerprints, "{threads} threads");
        }
    }

    #[test]
    fn condensation_orders_dependencies_first() {
        // a2 ← a1 ← a0(fact); a3 ↔ a4 cycle above a2.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![]));
        b.add_rule(GroundRule::new(a(2), vec![a(1)], vec![]));
        b.add_rule(GroundRule::new(a(3), vec![a(4), a(2)], vec![]));
        b.add_rule(GroundRule::new(a(4), vec![a(3)], vec![]));
        let p = b.finish();
        let cond = condensation(&p);
        // The 3/4 cycle is one component; every dependency is emitted
        // before its dependents.
        assert_eq!(cond.comp_of[3], cond.comp_of[4]);
        let pos = |l: u32| cond.iter().position(|c| c.contains(&l)).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
        assert_eq!(cond.iter().map(<[u32]>::len).sum::<usize>(), p.num_atoms());
        // comp_of ordinals match the CSR component rows.
        for c in 0..cond.num_components() {
            for &atom in cond.component(c) {
                assert_eq!(cond.comp_of[atom as usize] as usize, c);
            }
        }
    }

    #[test]
    fn comp_graph_dedups_edges_and_levels_wavefronts() {
        // a0 (fact); a1 ← a0, a0 (dup body refs collapse to one edge);
        // a2 ← a0; a3 ← a1, a2.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![a(0)]));
        b.add_rule(GroundRule::new(a(2), vec![a(0)], vec![]));
        b.add_rule(GroundRule::new(a(3), vec![a(1), a(2)], vec![]));
        let p = b.finish();
        let cond = condensation(&p);
        let g = comp_graph(&p, &cond);
        let ord = |l: u32| cond.comp_of[l as usize];
        // a0's component has two dependents (a1, a2) — the duplicated
        // body occurrence of a0 in a1's rule must not double the edge.
        assert_eq!(g.successors(ord(0)).len(), 2);
        // Wavefronts: {a0}, {a1, a2}, {a3}.
        assert_eq!(g.levels, 3);
        assert_eq!(g.max_width, 2);
        assert_eq!(g.level[ord(0) as usize], 0);
        assert_eq!(g.level[ord(1) as usize], 1);
        assert_eq!(g.level[ord(2) as usize], 1);
        assert_eq!(g.level[ord(3) as usize], 2);

        // The chunk plan over this tiny graph: every level is far below
        // the chunk-size floor, so each wavefront becomes exactly one
        // chunk and the chunk DAG is the 3-node chain of the levels.
        let plan = plan_chunks(&p, &cond, &g, 4);
        assert_eq!(plan.num_chunks(), 3);
        assert_eq!(plan.chunk(0), &[ord(0)]);
        assert_eq!(plan.chunk(2), &[ord(3)]);
        let mut mid = plan.chunk(1).to_vec();
        mid.sort_unstable();
        let mut expect = vec![ord(1), ord(2)];
        expect.sort_unstable();
        assert_eq!(mid, expect);
        assert_eq!(plan.indegree, vec![0, 1, 1]);
        assert_eq!(plan.successors(0), &[1]);
        assert_eq!(plan.successors(1), &[2]);
        assert_eq!(plan.successors(2), &[] as &[u32]);
    }

    #[test]
    fn stratified_chain_is_all_definite() {
        // Pure positive chain plus stratified negation: every component is
        // definite, nothing is unknown.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![]));
        b.add_rule(GroundRule::new(a(2), vec![a(0)], vec![a(1)]));
        b.add_rule(GroundRule::new(a(3), vec![a(0)], vec![a(2)]));
        let p = b.clone().finish();
        let res = ModularEngine::new(&p).solve();
        let stats = res.stats.unwrap();
        assert_eq!(stats.recursive_components, 0);
        assert_eq!(stats.unknown_atoms, 0);
        agree_with_global(&b);
    }

    #[test]
    fn negative_cycle_goes_recursive_and_stays_unknown() {
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![], vec![a(1)]));
        b.add_rule(GroundRule::new(a(1), vec![], vec![a(0)]));
        b.add_rule(GroundRule::new(a(2), vec![], vec![a(0)]));
        let p = b.clone().finish();
        let res = ModularEngine::new(&p).solve();
        let stats = res.stats.unwrap();
        assert!(stats.recursive_components >= 1);
        assert_eq!(stats.unknown_atoms, 3);
        agree_with_global(&b);
    }

    #[test]
    fn unknown_inputs_propagate_through_higher_components() {
        // a0/a1 draw cycle (unknown); a2 ← a0 positively; a3 ← ¬a2;
        // a4 ← a3, and a5 ← ¬a4: everything above the cycle is unknown,
        // and none of it may collapse to false.
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![], vec![a(1)]));
        b.add_rule(GroundRule::new(a(1), vec![], vec![a(0)]));
        b.add_rule(GroundRule::new(a(2), vec![a(0)], vec![]));
        b.add_rule(GroundRule::new(a(3), vec![], vec![a(2)]));
        b.add_rule(GroundRule::new(a(4), vec![a(3)], vec![]));
        b.add_rule(GroundRule::new(a(5), vec![], vec![a(4)]));
        agree_with_global(&b);
    }

    #[test]
    fn win_move_path_and_cycle() {
        // win chain 0→1→2 plus a 3⇄4 draw; mirrors the wp.rs tests.
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![], vec![a(1)]));
        b.add_rule(GroundRule::new(a(1), vec![], vec![a(2)]));
        b.add_rule(GroundRule::new(a(3), vec![], vec![a(4)]));
        b.add_rule(GroundRule::new(a(4), vec![], vec![a(3)]));
        let p = b.clone().finish();
        let res = ModularEngine::new(&p).solve();
        assert_eq!(res.value(a(2)), Truth::False);
        assert_eq!(res.value(a(1)), Truth::True);
        assert_eq!(res.value(a(0)), Truth::False);
        assert_eq!(res.value(a(3)), Truth::Unknown);
        assert_eq!(res.value(a(4)), Truth::Unknown);
        agree_with_global(&b);
    }

    #[test]
    fn zero_missing_rule_does_not_double_credit_later_rules() {
        // Regression: `h ← ∅` fires during setup; the rule `y ← h, x`
        // (initialized afterwards) must not see h as already satisfied AND
        // receive a propagation decrement for it — that double credit let
        // the unfounded y/x positive cycle come out true. All of y, x must
        // be false; h is true.
        let (y, h, x) = (a(0), a(1), a(2));
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(y, vec![h, x], vec![]));
        b.add_rule(GroundRule::new(h, vec![], vec![]));
        b.add_rule(GroundRule::new(x, vec![y], vec![]));
        b.add_rule(GroundRule::new(h, vec![y], vec![]));
        let p = b.clone().finish();
        let res = ModularEngine::new(&p).solve();
        assert_eq!(res.value(h), Truth::True);
        assert_eq!(res.value(y), Truth::False);
        assert_eq!(res.value(x), Truth::False);
        agree_with_global(&b);
    }

    #[test]
    fn positive_loops_are_unfounded_in_definite_components() {
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![a(1)], vec![]));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![]));
        b.add_fact(a(2));
        b.add_rule(GroundRule::new(a(3), vec![a(2), a(0)], vec![]));
        agree_with_global(&b);
    }

    #[test]
    fn facts_inside_recursive_components_are_true() {
        // a0 is a fact and also on a negative cycle with a1.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(0), vec![], vec![a(1)]));
        b.add_rule(GroundRule::new(a(1), vec![], vec![a(0)]));
        let p = b.clone().finish();
        let res = ModularEngine::new(&p).solve();
        assert_eq!(res.value(a(0)), Truth::True);
        assert_eq!(res.value(a(1)), Truth::False);
        agree_with_global(&b);
    }

    #[test]
    fn incremental_reuse_copies_unchanged_component_verdicts() {
        // Base: a fact chain plus a draw cycle (genuinely unknown). Grow
        // the program with an independent chain; every untouched component
        // must be reused verbatim and the model must agree with a fresh
        // solve — including the reused Unknowns.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![]));
        b.add_rule(GroundRule::new(a(2), vec![], vec![a(3)]));
        b.add_rule(GroundRule::new(a(3), vec![], vec![a(2)]));
        let base = b.clone().finish();
        let base_res = ModularEngine::new(&base).solve();
        assert!(base_res.memo.is_some(), "modular solves carry a memo");

        b.add_fact(a(4));
        b.add_rule(GroundRule::new(a(5), vec![a(4)], vec![a(1)]));
        let grown = b.finish();
        let inc = ModularEngine::new(&grown).solve_incremental(Some((&base, &base_res)));
        let fresh = ModularEngine::new(&grown).solve();
        for &atom in grown.atoms() {
            assert_eq!(inc.value(atom), fresh.value(atom), "on {atom:?}");
        }
        // {a0}, {a1} and the {a2,a3} cycle are untouched: all reused.
        let stats = inc.stats.unwrap();
        assert_eq!(stats.components_reused, 3, "{stats:?}");
        assert_eq!(inc.value(a(2)), Truth::Unknown, "reused unknown survives");
        assert_eq!(inc.value(a(5)), Truth::False, "new rule evaluated fresh");

        // The incremental path composes with parallel evaluation:
        // memo-reused components skip evaluation on every worker count and
        // the result stays bit-identical.
        for threads in [2usize, 4, 8] {
            let par = ModularEngine::new(&grown)
                .with_threads(threads)
                .solve_incremental(Some((&base, &base_res)));
            for &atom in grown.atoms() {
                assert_eq!(par.value(atom), inc.value(atom), "on {atom:?}");
                assert_eq!(par.stage_of(atom), inc.stage_of(atom), "on {atom:?}");
            }
            assert_eq!(par.stats.unwrap().components_reused, 3);
        }
    }

    #[test]
    fn incremental_reuse_rejects_components_with_changed_inputs() {
        // Base (no facts): a(1) ← a(0) ← a(2), everything false. Growing
        // the program with the fact a(0) changes a(0)'s own fingerprint
        // (fact bit) and a(1)'s external input — neither may be reused.
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![]));
        b.add_rule(GroundRule::new(a(0), vec![a(2)], vec![]));
        let base = b.clone().finish();
        let base_res = ModularEngine::new(&base).solve();
        assert_eq!(base_res.value(a(1)), Truth::False);

        b.add_fact(a(0));
        let grown = b.finish();
        let inc = ModularEngine::new(&grown).solve_incremental(Some((&base, &base_res)));
        assert_eq!(inc.value(a(0)), Truth::True);
        assert_eq!(inc.value(a(1)), Truth::True, "stale False must not leak");
        // Only {a2} (no rules, no facts, unchanged) can be reused.
        assert_eq!(inc.stats.unwrap().components_reused, 1);
    }

    #[test]
    fn parallel_counters_cover_every_chunk() {
        // A two-level diamond fanout: every scheduler chunk is either
        // seeded into the queue or chained inline, and together they
        // cover the whole plan.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        for i in 1..64 {
            b.add_rule(GroundRule::new(a(i), vec![a(0)], vec![]));
            b.add_rule(GroundRule::new(a(64 + i), vec![a(i)], vec![]));
        }
        let p = b.finish();
        let res = ModularEngine::new(&p).with_threads(4).solve();
        let stats = res.stats.unwrap();
        assert_eq!(stats.threads, 4.min(stats.components));
        assert!(
            stats.chunks >= 1 && stats.chunks <= stats.components,
            "{stats:?}"
        );
        assert_eq!(
            stats.queued_chunks + stats.inline_chunks,
            stats.chunks,
            "{stats:?}"
        );
        assert!(stats.wavefronts >= 3, "{stats:?}");
        assert!(stats.max_wavefront >= 63, "{stats:?}");
        // Serial runs never build the component DAG or a chunk plan.
        let serial = ModularEngine::new(&p).solve().stats.unwrap();
        assert_eq!(serial.threads, 1);
        assert_eq!(serial.wavefronts, 0);
        assert_eq!(serial.chunks, 0);
        assert_eq!(serial.queued_chunks + serial.inline_chunks, 0);
    }

    #[test]
    fn single_component_program_schedules_one_chunk() {
        // One draw cycle = one component: `resolve_threads` clamps every
        // requested worker count to 1, so the run stays on the serial
        // path (no plan at all) and still agrees with itself.
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![], vec![a(1)]));
        b.add_rule(GroundRule::new(a(1), vec![], vec![a(0)]));
        let p = b.finish();
        for threads in [1usize, 2, 4, 8] {
            let res = ModularEngine::new(&p).with_threads(threads).solve();
            assert_eq!(res.value(a(0)), Truth::Unknown);
            assert_eq!(res.value(a(1)), Truth::Unknown);
            let stats = res.stats.unwrap();
            assert_eq!(stats.threads, 1, "{stats:?}");
            assert_eq!(stats.chunks, 0, "serial path plans nothing");
        }

        // Two independent components on one wavefront level do exercise
        // the scheduler — as a plan of exactly one chunk, which must run
        // once and terminate at every worker count.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_fact(a(1));
        let p = b.finish();
        let serial = ModularEngine::new(&p).solve();
        for threads in [2usize, 4, 8] {
            let res = ModularEngine::new(&p).with_threads(threads).solve();
            for &atom in p.atoms() {
                assert_eq!(res.value(atom), serial.value(atom));
                assert_eq!(res.stage_of(atom), serial.stage_of(atom));
            }
            let stats = res.stats.unwrap();
            assert_eq!(stats.chunks, 1, "{stats:?}");
            assert_eq!(stats.queued_chunks + stats.inline_chunks, 1, "{stats:?}");
        }
    }

    #[test]
    fn widest_wavefront_fitting_one_chunk_stays_one_chunk() {
        // A broad fanout whose total rule weight stays below the
        // chunk-size floor: every wavefront level must collapse into a
        // single chunk, so the chunk count equals the wavefront count.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        for i in 1..200 {
            b.add_rule(GroundRule::new(a(i), vec![a(0)], vec![]));
        }
        let p = b.finish();
        // 4 threads × 200 rules: level_rules / (4·threads) is far below
        // CHUNK_RULES_MIN, so the clamp makes one chunk per level.
        let res = ModularEngine::new(&p).with_threads(4).solve();
        let stats = res.stats.unwrap();
        assert_eq!(stats.wavefronts, 2, "{stats:?}");
        assert_eq!(stats.max_wavefront, 199, "{stats:?}");
        assert_eq!(stats.chunks, 2, "{stats:?}");
        let serial = ModularEngine::new(&p).solve();
        for &atom in p.atoms() {
            assert_eq!(res.value(atom), serial.value(atom));
        }
    }

    #[test]
    fn panic_inside_a_chunk_propagates_without_deadlock() {
        // A panic while evaluating one component of a chunk must unwind
        // out of `solve` (via the scope join) rather than leave sibling
        // workers asleep on the condvar — at every worker count,
        // including the serial path.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        for i in 1..64 {
            b.add_rule(GroundRule::new(a(i), vec![a(0)], vec![]));
            b.add_rule(GroundRule::new(a(64 + i), vec![a(i)], vec![]));
        }
        let p = b.finish();
        let victim = condensation(&p).num_components() as u32 / 2;
        let plan = wfdl_core::budget::FaultPlan {
            site: FaultSite::WfsComponent(victim),
            kind: wfdl_core::budget::FaultKind::Panic,
        };
        for threads in [1usize, 2, 4, 8] {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                ModularEngine::new(&p)
                    .with_threads(threads)
                    .with_budget(SolveBudget::unlimited().with_fault(plan))
                    .solve()
            }));
            assert!(outcome.is_err(), "panic swallowed at {threads} threads");
        }
    }

    #[test]
    fn budget_trip_truncates_to_a_sound_under_approximation() {
        // A trip fault at a mid-sweep component stops evaluation at a
        // component/chunk boundary: the result reports the reason, carries
        // no memo, and every decided atom agrees with the complete model
        // (nothing flips — undecided atoms only degrade to Unknown).
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        for i in 1..64 {
            b.add_rule(GroundRule::new(a(i), vec![a(0)], vec![]));
            b.add_rule(GroundRule::new(a(64 + i), vec![a(i)], vec![]));
        }
        let p = b.finish();
        let full = ModularEngine::new(&p).solve();
        assert_eq!(full.truncation, None);
        assert!(full.memo.is_some());
        let victim = condensation(&p).num_components() as u32 / 2;
        let plan = wfdl_core::budget::FaultPlan {
            site: FaultSite::WfsComponent(victim),
            kind: wfdl_core::budget::FaultKind::TripCancel,
        };
        for threads in [1usize, 2, 4, 8] {
            let res = ModularEngine::new(&p)
                .with_threads(threads)
                .with_budget(SolveBudget::unlimited().with_fault(plan))
                .solve();
            assert_eq!(
                res.truncation,
                Some(TruncationReason::Cancelled),
                "at {threads} threads"
            );
            assert!(res.memo.is_none(), "truncated result must drop its memo");
            let mut undecided = 0usize;
            for &atom in p.atoms() {
                match res.value(atom) {
                    Truth::Unknown => {
                        undecided += 1;
                        // Sound under-approximation: only degrades.
                    }
                    v => assert_eq!(v, full.value(atom), "decided atom flipped"),
                }
            }
            assert!(
                undecided > 0,
                "trip at {victim} should leave atoms undecided"
            );
        }
    }

    #[test]
    fn pre_cancelled_budget_yields_fully_unknown_model() {
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![]));
        let p = b.finish();
        let token = wfdl_core::CancelToken::new();
        token.cancel();
        let res = ModularEngine::new(&p)
            .with_budget(SolveBudget::unlimited().with_cancel(token))
            .solve();
        assert_eq!(res.truncation, Some(TruncationReason::Cancelled));
        for &atom in p.atoms() {
            assert_eq!(res.value(atom), Truth::Unknown);
        }
    }

    #[test]
    fn empty_program() {
        let p = GroundProgramBuilder::new().finish();
        let res = ModularEngine::new(&p).solve();
        assert_eq!(res.stages, 0);
        assert_eq!(res.stats.unwrap().components, 0);
        // Degenerate thread counts are fine too.
        let res = ModularEngine::new(&p).with_threads(8).solve();
        assert_eq!(res.stats.unwrap().threads, 1);
    }
}
