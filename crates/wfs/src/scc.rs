//! SCC-modular well-founded evaluation.
//!
//! The global fixpoint engines ([`crate::wp`], [`crate::alternating`])
//! re-solve the entire ground program every stage, even when negation is
//! confined to a tiny subcomponent. This module exploits the classical
//! modularity (splitting) property of the well-founded semantics instead:
//!
//! 1. build the **atom dependency graph** (an edge `head → body atom` for
//!    every rule, positive and negative alike) over the program's dense
//!    local atom ids;
//! 2. run Tarjan's algorithm; its emission order visits every strongly
//!    connected component **after** all components it depends on;
//! 3. evaluate components bottom-up, substituting the verdicts of lower
//!    components into each rule as it is considered:
//!    * a component with no internal negative edge and no undefined lower
//!      verdict in reach is **definite**: one flat semi-naive pass derives
//!      its true atoms and everything else in it is false — no unfounded-set
//!      computation at all;
//!    * otherwise the component is **recursive**: the `W_P` machinery runs
//!      on the (usually tiny) subprogram of the component's own rules, with
//!      undefined lower atoms carried as *assumed-unknown* inputs.
//!
//! On stratified-heavy workloads almost every component is definite, so the
//! whole model is computed in a single linear sweep — the measured speedups
//! in `benches/modular_vs_global.rs` come from exactly this.
//!
//! The per-atom decision *stage* reported by this engine is the 1-based
//! ordinal of the component that decided it, which preserves the invariant
//! that stages are monotone along derivations but is **not** comparable to
//! the `W_P` stage arithmetic of Example 9 — use `EngineKind::WpLiteral`
//! for stage-faithful traces.

use crate::result::EngineResult;
use crate::wp::{StepMode, WpEngine};
use wfdl_core::fxhash::mix64 as mix;
use wfdl_core::{BitSet, Interp, Truth};
use wfdl_storage::{GroundProgram, GroundRule};

/// Per-run statistics of the modular evaluation, exposed through
/// [`EngineResult::stats`] and the `wfdl` CLI's `--stats` flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModularStats {
    /// Number of strongly connected components of the dependency graph.
    pub components: usize,
    /// Components evaluated by the flat semi-naive pass.
    pub definite_components: usize,
    /// Components handed to the `W_P` subsolver.
    pub recursive_components: usize,
    /// Atoms in the largest component.
    pub largest_component: usize,
    /// Atoms evaluated inside recursive components.
    pub atoms_in_recursive: usize,
    /// Atoms left undefined by the run.
    pub unknown_atoms: usize,
    /// Components whose verdicts were copied from a previous solve
    /// (incremental runs only; see [`ModularMemo`]).
    pub components_reused: usize,
}

/// The condensation and per-component **input fingerprints** of one
/// modular solve, retained inside [`EngineResult::memo`] so the *next*
/// solve over a grown program can recognize unchanged components and copy
/// their verdicts instead of re-evaluating them.
///
/// A component's fingerprint digests everything its verdicts depend on:
/// its atom set (as universe [`wfdl_core::AtomId`]s, which are stable
/// across solves), fact membership, every rule heading one of its atoms
/// (bodies in atom-id space), and — for body atoms outside the component —
/// their already-decided truth values. Verdict reuse additionally requires
/// the exact atom sets to coincide, so a 64-bit collision can only confuse
/// two states of the *same* component's rules or inputs.
#[derive(Clone, Debug)]
pub struct ModularMemo {
    /// The condensation the solve ran over.
    pub condensation: Condensation,
    /// Per-component input fingerprint, indexed by emission ordinal.
    pub fingerprints: Vec<u64>,
}

/// The SCC-modular WFS engine.
pub struct ModularEngine<'a> {
    prog: &'a GroundProgram,
}

impl<'a> ModularEngine<'a> {
    /// Prepares the engine for a ground program.
    pub fn new(prog: &'a GroundProgram) -> Self {
        ModularEngine { prog }
    }

    /// Computes the well-founded model component by component.
    pub fn solve(&self) -> EngineResult {
        self.solve_incremental(None)
    }

    /// Computes the well-founded model, reusing verdicts from a previous
    /// solve where possible.
    ///
    /// `prev` is the ground program and engine result of the previous
    /// solve over the **same universe** (so atom ids align); it must carry
    /// a [`ModularMemo`] (i.e. come from this engine) for any reuse to
    /// happen. A component of the current program whose input fingerprint
    /// and atom set match a previous component has, by the modularity
    /// (splitting) property of the well-founded semantics, the same
    /// verdicts — they are copied and the component's evaluation skipped
    /// entirely. Everything else (new components, components with new
    /// rules or facts, components whose lower inputs changed) is evaluated
    /// normally. The number of reused components is reported in
    /// [`ModularStats::components_reused`].
    pub fn solve_incremental(&self, prev: Option<(&GroundProgram, &EngineResult)>) -> EngineResult {
        let prog = self.prog;
        let n = prog.num_atoms();
        let cond = condensation(prog);
        let comp_of = &cond.comp_of;
        let prev_memo = prev.and_then(|(pg, pr)| pr.memo.as_ref().map(|m| (pg, pr, m)));
        // Dense AtomId → previous-local-id map, built once so reuse probes
        // are single array reads instead of binary searches per atom.
        const ABSENT: u32 = u32::MAX;
        let prev_local: Vec<u32> = match prev_memo {
            Some((pg, _, _)) => {
                let size = pg.atoms().last().map_or(0, |a| a.index() + 1);
                let mut map = vec![ABSENT; size];
                for (i, &a) in pg.atoms().iter().enumerate() {
                    map[a.index()] = i as u32;
                }
                map
            }
            None => Vec::new(),
        };

        // Local truth state; Truth::Unknown doubles as "not yet decided"
        // (sound because components are decided strictly bottom-up).
        let mut truth = vec![Truth::Unknown; n];
        let mut stage_of = vec![0u32; n];
        let mut is_fact = BitSet::with_capacity(n);
        for &f in prog.facts_local() {
            is_fact.insert(f as usize);
        }

        let mut stats = ModularStats {
            components: cond.num_components(),
            ..Default::default()
        };
        let mut fingerprints: Vec<u64> = Vec::with_capacity(cond.num_components());

        // Scratch buffers reused across components (most components are
        // singletons, so per-component allocation would dominate).
        let mut rule_slot: Vec<u32> = vec![u32::MAX; prog.num_rules()];
        let mut rules: Vec<u32> = Vec::new();
        let mut missing: Vec<u32> = Vec::new();
        let mut queue: Vec<u32> = Vec::new();
        let mut sorted_comp: Vec<u32> = Vec::new();

        for (ordinal, comp) in cond.iter().enumerate() {
            let ord = ordinal as u32;
            let stage = ord + 1;
            stats.largest_component = stats.largest_component.max(comp.len());

            // Collect the component's rules and classify the component.
            // Tarjan assigned component ordinals in emission order, so
            // `comp_of[b] == ord` tests membership in this component.
            rules.clear();
            let mut definite = true;
            for &a in comp {
                for &rid in prog.rules_with_head_local(a) {
                    let r = rid.index();
                    rules.push(r as u32);
                    for &b in prog.neg_local(r) {
                        if comp_of[b as usize] == ord {
                            definite = false; // internal negation
                        } else if truth[b as usize] == Truth::Unknown {
                            definite = false; // undefined lower input
                        }
                    }
                    for &b in prog.pos_local(r) {
                        if comp_of[b as usize] != ord && truth[b as usize] == Truth::Unknown {
                            definite = false; // undefined lower input
                        }
                    }
                }
            }

            // Fingerprint this component's inputs; try to reuse the
            // previous solve's verdicts before evaluating anything.
            let fp =
                fingerprint_component(prog, comp, ord, comp_of, &truth, &is_fact, &mut sorted_comp);
            fingerprints.push(fp);
            if let Some((_, prev_result, memo)) = prev_memo {
                if try_reuse(
                    prog,
                    comp,
                    fp,
                    &prev_local,
                    prev_result,
                    memo,
                    stage,
                    &mut truth,
                    &mut stage_of,
                ) {
                    stats.components_reused += 1;
                    if definite {
                        stats.definite_components += 1;
                    } else {
                        stats.recursive_components += 1;
                        stats.atoms_in_recursive += comp.len();
                    }
                    continue;
                }
            }

            if definite {
                stats.definite_components += 1;
                self.solve_definite(
                    comp,
                    ord,
                    stage,
                    comp_of,
                    &rules,
                    &mut rule_slot,
                    &mut missing,
                    &mut queue,
                    &is_fact,
                    &mut truth,
                    &mut stage_of,
                );
            } else {
                stats.recursive_components += 1;
                stats.atoms_in_recursive += comp.len();
                self.solve_recursive(
                    comp,
                    ord,
                    stage,
                    comp_of,
                    &rules,
                    &is_fact,
                    &mut truth,
                    &mut stage_of,
                );
            }
        }

        // Assemble the EngineResult over original atom ids.
        let mut interp = Interp::with_capacity(n);
        let cap = prog.atoms().last().map_or(0, |a| a.index() + 1);
        let mut decided_stage = crate::result::StageMap::with_capacity(cap);
        for a in 0..n {
            let atom = prog.atom_of_local(a as u32);
            match truth[a] {
                Truth::True => {
                    interp.set_true(atom);
                    decided_stage.insert(atom, stage_of[a]);
                }
                Truth::False => {
                    interp.set_false(atom);
                    decided_stage.insert(atom, stage_of[a]);
                }
                Truth::Unknown => stats.unknown_atoms += 1,
            }
        }
        EngineResult {
            interp,
            decided_stage,
            stages: cond.num_components() as u32,
            stats: Some(stats),
            memo: Some(ModularMemo {
                condensation: cond,
                fingerprints,
            }),
        }
    }

    /// Flat semi-naive evaluation of a negation-free (after substitution)
    /// component: derivable atoms are true, the rest are false.
    #[allow(clippy::too_many_arguments)]
    fn solve_definite(
        &self,
        comp: &[u32],
        ordinal: u32,
        stage: u32,
        comp_of: &[u32],
        rules: &[u32],
        rule_slot: &mut [u32],
        missing: &mut Vec<u32>,
        queue: &mut Vec<u32>,
        is_fact: &BitSet,
        truth: &mut [Truth],
        stage_of: &mut [u32],
    ) {
        let prog = self.prog;
        // missing[i] = internal positive atoms of rules[i] not yet true;
        // u32::MAX marks a dead rule (an external literal is unsatisfied).
        missing.clear();
        queue.clear();

        let mut derive = |a: u32, truth: &mut [Truth], queue: &mut Vec<u32>| {
            if truth[a as usize] != Truth::True {
                truth[a as usize] = Truth::True;
                stage_of[a as usize] = stage;
                queue.push(a);
            }
        };

        // Phase 1: count every rule's missing internal atoms BEFORE any
        // derivation. Internal atoms are all undecided at this point, so
        // the counts are consistent; firing while counting would let a
        // later rule see an already-derived atom and then receive a queue
        // decrement for the same atom — deriving unfounded atoms.
        for (i, &r) in rules.iter().enumerate() {
            rule_slot[r as usize] = i as u32;
            let r = r as usize;
            let mut m = 0u32;
            let mut dead = false;
            for &b in prog.pos_local(r) {
                if comp_of[b as usize] == ordinal {
                    m += 1; // internal: wait for derivation
                } else if truth[b as usize] != Truth::True {
                    dead = true; // external and not true ⇒ false here
                }
            }
            // All negative atoms are external (definite components have no
            // internal negation) and decided: true kills the rule.
            if prog
                .neg_local(r)
                .iter()
                .any(|&b| truth[b as usize] == Truth::True)
            {
                dead = true;
            }
            missing.push(if dead { u32::MAX } else { m });
        }
        // Phase 2: fire rules with no internal prerequisites, seed facts,
        // then propagate.
        for (i, &r) in rules.iter().enumerate() {
            if missing[i] == 0 {
                derive(prog.head_local(r as usize), truth, queue);
            }
        }
        for &a in comp {
            if is_fact.contains(a as usize) {
                derive(a, truth, queue);
            }
        }
        while let Some(a) = queue.pop() {
            for &rid in prog.rules_with_pos_local(a) {
                let slot = rule_slot[rid.index()];
                if slot == u32::MAX {
                    continue; // rule belongs to a later component
                }
                let m = &mut missing[slot as usize];
                if *m == u32::MAX || *m == 0 {
                    continue;
                }
                // An atom may occur only once per body (GroundRule dedups).
                *m -= 1;
                if *m == 0 {
                    derive(prog.head_local(rid.index()), truth, queue);
                }
            }
        }
        for &a in comp {
            if truth[a as usize] != Truth::True {
                truth[a as usize] = Truth::False;
                stage_of[a as usize] = stage;
            }
        }
        for &r in rules {
            rule_slot[r as usize] = u32::MAX;
        }
    }

    /// Full `W_P` evaluation of a component whose verdicts may be mutually
    /// recursive through negation (or depend on undefined lower atoms).
    #[allow(clippy::too_many_arguments)]
    fn solve_recursive(
        &self,
        comp: &[u32],
        ordinal: u32,
        stage: u32,
        comp_of: &[u32],
        rules: &[u32],
        is_fact: &BitSet,
        truth: &mut [Truth],
        stage_of: &mut [u32],
    ) {
        let prog = self.prog;
        // Subprogram atoms: the component plus every undefined external
        // atom its rules mention (carried as assumed-unknown inputs).
        // Local ids are sorted, so sorting them sorts the atom ids too.
        let mut sub_atoms: Vec<u32> = comp.to_vec();
        for &r in rules {
            let r = r as usize;
            for &b in prog.pos_local(r).iter().chain(prog.neg_local(r)) {
                if comp_of[b as usize] != ordinal && truth[b as usize] == Truth::Unknown {
                    sub_atoms.push(b);
                }
            }
        }
        sub_atoms.sort_unstable();
        sub_atoms.dedup();

        // Partially evaluate the component's rules against the decided
        // lower verdicts, building a standalone sub-GroundProgram whose
        // atom universe is `sub_atoms` (local ids are ascending, so the
        // sub program's local numbering is the position in `sub_atoms`).
        let atom_id = |b: u32| prog.atom_of_local(b);
        let mut sub_rules: Vec<GroundRule> = Vec::with_capacity(rules.len());
        'rules: for &r in rules {
            let r = r as usize;
            let mut pos = Vec::new();
            for &b in prog.pos_local(r) {
                if comp_of[b as usize] == ordinal {
                    pos.push(atom_id(b));
                } else {
                    match truth[b as usize] {
                        Truth::True => {}                       // satisfied: drop
                        Truth::False => continue 'rules,        // dead rule
                        Truth::Unknown => pos.push(atom_id(b)), // assumed input
                    }
                }
            }
            let mut neg = Vec::new();
            for &b in prog.neg_local(r) {
                if comp_of[b as usize] == ordinal {
                    neg.push(atom_id(b));
                } else {
                    match truth[b as usize] {
                        Truth::False => {}                      // satisfied: drop
                        Truth::True => continue 'rules,         // dead rule
                        Truth::Unknown => neg.push(atom_id(b)), // assumed input
                    }
                }
            }
            sub_rules.push(GroundRule::new(atom_id(prog.head_local(r)), pos, neg));
        }

        let fact_ids: Vec<_> = comp
            .iter()
            .filter(|&&a| is_fact.contains(a as usize))
            .map(|&a| atom_id(a))
            .collect();
        let assumed: Vec<u32> = sub_atoms
            .iter()
            .enumerate()
            .filter(|&(_, &b)| comp_of[b as usize] != ordinal)
            .map(|(i, _)| i as u32)
            .collect();

        let atom_ids: Vec<_> = sub_atoms.iter().map(|&b| atom_id(b)).collect();
        let sub = GroundProgram::build_with_atom_universe(sub_rules, fact_ids, atom_ids);
        let result = WpEngine::new(&sub)
            .with_assumed_unknown(assumed)
            .solve(StepMode::Accelerated);

        for &a in comp {
            let verdict = result.value(prog.atom_of_local(a));
            truth[a as usize] = verdict;
            if verdict != Truth::Unknown {
                stage_of[a as usize] = stage;
            }
        }
    }
}

/// Digests a component's inputs into a 64-bit fingerprint: atom ids and
/// fact bits in ascending-id order, every rule heading a component atom
/// (bodies in atom-id space), and the decided truth of each external body
/// atom. Deterministic across solves because universe atom ids are stable
/// and ground-rule bodies are stored sorted.
fn fingerprint_component(
    prog: &GroundProgram,
    comp: &[u32],
    ord: u32,
    comp_of: &[u32],
    truth: &[Truth],
    is_fact: &BitSet,
    sorted_comp: &mut Vec<u32>,
) -> u64 {
    sorted_comp.clear();
    sorted_comp.extend_from_slice(comp);
    // Local ids increase with atom ids, so this visits atoms in a
    // solve-independent order even though Tarjan's emission order within
    // the component is not.
    sorted_comp.sort_unstable();
    let mut h = mix(0, comp.len() as u64);
    let body = |mut h: u64, atoms: &[u32]| {
        h = mix(h, atoms.len() as u64);
        for &b in atoms {
            h = mix(h, prog.atom_of_local(b).index() as u64);
            let tag = if comp_of[b as usize] == ord {
                3 // internal: undecided by construction
            } else {
                match truth[b as usize] {
                    Truth::False => 0,
                    Truth::Unknown => 1,
                    Truth::True => 2,
                }
            };
            h = mix(h, tag);
        }
        h
    };
    for &a in sorted_comp.iter() {
        h = mix(h, prog.atom_of_local(a).index() as u64);
        h = mix(h, is_fact.contains(a as usize) as u64);
        let heading = prog.rules_with_head_local(a);
        h = mix(h, heading.len() as u64);
        for &rid in heading {
            let r = rid.index();
            h = body(h, prog.pos_local(r));
            h = body(h, prog.neg_local(r));
        }
    }
    h
}

/// Copies the previous solve's verdicts for `comp` if it is provably the
/// same component with the same inputs: every atom must map into one
/// previous component of identical size, and the input fingerprints must
/// agree. Returns whether the reuse happened.
#[allow(clippy::too_many_arguments)]
fn try_reuse(
    prog: &GroundProgram,
    comp: &[u32],
    fp: u64,
    prev_local: &[u32],
    prev_result: &EngineResult,
    memo: &ModularMemo,
    stage: u32,
    truth: &mut [Truth],
    stage_of: &mut [u32],
) -> bool {
    const ABSENT: u32 = u32::MAX;
    let lookup = |local: u32| -> Option<u32> {
        match prev_local.get(prog.atom_of_local(local).index()) {
            Some(&l) if l != ABSENT => Some(l),
            _ => None,
        }
    };
    let Some(first_old) = lookup(comp[0]) else {
        return false; // atom is new: the component cannot be a reuse
    };
    let old_ord = memo.condensation.comp_of[first_old as usize] as usize;
    if memo.fingerprints[old_ord] != fp || memo.condensation.component(old_ord).len() != comp.len()
    {
        return false;
    }
    for &a in comp {
        match lookup(a) {
            Some(l) if memo.condensation.comp_of[l as usize] as usize == old_ord => {}
            _ => return false,
        }
    }
    for &a in comp {
        let verdict = prev_result.value(prog.atom_of_local(a));
        truth[a as usize] = verdict;
        if verdict != Truth::Unknown {
            stage_of[a as usize] = stage;
        }
    }
    true
}

/// Tarjan's strongly-connected-components algorithm (iterative) over the
/// atom dependency graph `head → body atom`. Components are stored in
/// **emission order**, which visits each component after everything it
/// depends on (reverse topological order of the condensation), in a flat
/// CSR layout — no per-component allocation even when every component is
/// a singleton (the common case on stratified workloads).
#[derive(Clone, Debug)]
pub struct Condensation {
    /// Local atom id → component ordinal (emission order).
    pub comp_of: Vec<u32>,
    /// Component atoms, concatenated in emission order.
    comp_atoms: Vec<u32>,
    /// CSR offsets into `comp_atoms`, `num_components() + 1` entries.
    comp_off: Vec<u32>,
}

impl Condensation {
    /// Number of strongly connected components.
    pub fn num_components(&self) -> usize {
        self.comp_off.len() - 1
    }

    /// The atoms of component `c` (emission order within the component).
    pub fn component(&self, c: usize) -> &[u32] {
        &self.comp_atoms[self.comp_off[c] as usize..self.comp_off[c + 1] as usize]
    }

    /// Iterates components in emission (dependencies-first) order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.num_components()).map(|c| self.component(c))
    }
}

/// Computes the [`Condensation`] of a ground program's dependency graph.
pub fn condensation(prog: &GroundProgram) -> Condensation {
    let n = prog.num_atoms();

    // Flat adjacency CSR: successors of an atom are the body atoms of the
    // rules it heads.
    let mut counts = vec![0u32; n];
    for a in 0..n as u32 {
        let deg: usize = prog
            .rules_with_head_local(a)
            .iter()
            .map(|rid| prog.pos_local(rid.index()).len() + prog.neg_local(rid.index()).len())
            .sum();
        counts[a as usize] = deg as u32;
    }
    let mut adj_off = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    adj_off.push(0);
    for &c in &counts {
        acc += c;
        adj_off.push(acc);
    }
    let mut adj = vec![0u32; acc as usize];
    {
        let mut fill: Vec<u32> = adj_off[..n].to_vec();
        for a in 0..n as u32 {
            for &rid in prog.rules_with_head_local(a) {
                let r = rid.index();
                for &b in prog.pos_local(r).iter().chain(prog.neg_local(r)) {
                    adj[fill[a as usize] as usize] = b;
                    fill[a as usize] += 1;
                }
            }
        }
    }

    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = BitSet::with_capacity(n);
    let mut stack: Vec<u32> = Vec::new();
    let mut comp_of = vec![UNVISITED; n];
    let mut comp_atoms: Vec<u32> = Vec::with_capacity(n);
    let mut comp_off: Vec<u32> = vec![0];
    let mut next_index = 0u32;
    // Explicit DFS frames: (node, cursor into adj).
    let mut frames: Vec<(u32, u32)> = Vec::new();

    for v0 in 0..n as u32 {
        if index[v0 as usize] != UNVISITED {
            continue;
        }
        index[v0 as usize] = next_index;
        low[v0 as usize] = next_index;
        next_index += 1;
        stack.push(v0);
        on_stack.insert(v0 as usize);
        frames.push((v0, adj_off[v0 as usize]));

        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor < adj_off[v as usize + 1] {
                let w = adj[*cursor as usize];
                *cursor += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack.insert(w as usize);
                    frames.push((w, adj_off[w as usize]));
                } else if on_stack.contains(w as usize) {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    let ordinal = (comp_off.len() - 1) as u32;
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack.remove(w as usize);
                        comp_of[w as usize] = ordinal;
                        comp_atoms.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp_off.push(comp_atoms.len() as u32);
                }
            }
        }
    }

    Condensation {
        comp_of,
        comp_atoms,
        comp_off,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alternating::AlternatingEngine;
    use crate::wp::{StepMode, WpEngine};
    use wfdl_core::AtomId;
    use wfdl_storage::{GroundProgramBuilder, GroundRule};

    fn a(i: usize) -> AtomId {
        AtomId::from_index(i)
    }

    fn agree_with_global(b: &GroundProgramBuilder) {
        let p = b.clone().finish();
        let modular = ModularEngine::new(&p).solve();
        let wp = WpEngine::new(&p).solve(StepMode::Accelerated);
        let alt = AlternatingEngine::new(&p).solve();
        for &atom in p.atoms() {
            assert_eq!(modular.value(atom), wp.value(atom), "vs Wp on {atom:?}");
            assert_eq!(modular.value(atom), alt.value(atom), "vs Alt on {atom:?}");
        }
    }

    #[test]
    fn condensation_orders_dependencies_first() {
        // a2 ← a1 ← a0(fact); a3 ↔ a4 cycle above a2.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![]));
        b.add_rule(GroundRule::new(a(2), vec![a(1)], vec![]));
        b.add_rule(GroundRule::new(a(3), vec![a(4), a(2)], vec![]));
        b.add_rule(GroundRule::new(a(4), vec![a(3)], vec![]));
        let p = b.finish();
        let cond = condensation(&p);
        // The 3/4 cycle is one component; every dependency is emitted
        // before its dependents.
        assert_eq!(cond.comp_of[3], cond.comp_of[4]);
        let pos = |l: u32| cond.iter().position(|c| c.contains(&l)).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
        assert_eq!(cond.iter().map(<[u32]>::len).sum::<usize>(), p.num_atoms());
        // comp_of ordinals match the CSR component rows.
        for c in 0..cond.num_components() {
            for &atom in cond.component(c) {
                assert_eq!(cond.comp_of[atom as usize] as usize, c);
            }
        }
    }

    #[test]
    fn stratified_chain_is_all_definite() {
        // Pure positive chain plus stratified negation: every component is
        // definite, nothing is unknown.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![]));
        b.add_rule(GroundRule::new(a(2), vec![a(0)], vec![a(1)]));
        b.add_rule(GroundRule::new(a(3), vec![a(0)], vec![a(2)]));
        let p = b.clone().finish();
        let res = ModularEngine::new(&p).solve();
        let stats = res.stats.unwrap();
        assert_eq!(stats.recursive_components, 0);
        assert_eq!(stats.unknown_atoms, 0);
        agree_with_global(&b);
    }

    #[test]
    fn negative_cycle_goes_recursive_and_stays_unknown() {
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![], vec![a(1)]));
        b.add_rule(GroundRule::new(a(1), vec![], vec![a(0)]));
        b.add_rule(GroundRule::new(a(2), vec![], vec![a(0)]));
        let p = b.clone().finish();
        let res = ModularEngine::new(&p).solve();
        let stats = res.stats.unwrap();
        assert!(stats.recursive_components >= 1);
        assert_eq!(stats.unknown_atoms, 3);
        agree_with_global(&b);
    }

    #[test]
    fn unknown_inputs_propagate_through_higher_components() {
        // a0/a1 draw cycle (unknown); a2 ← a0 positively; a3 ← ¬a2;
        // a4 ← a3, and a5 ← ¬a4: everything above the cycle is unknown,
        // and none of it may collapse to false.
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![], vec![a(1)]));
        b.add_rule(GroundRule::new(a(1), vec![], vec![a(0)]));
        b.add_rule(GroundRule::new(a(2), vec![a(0)], vec![]));
        b.add_rule(GroundRule::new(a(3), vec![], vec![a(2)]));
        b.add_rule(GroundRule::new(a(4), vec![a(3)], vec![]));
        b.add_rule(GroundRule::new(a(5), vec![], vec![a(4)]));
        agree_with_global(&b);
    }

    #[test]
    fn win_move_path_and_cycle() {
        // win chain 0→1→2 plus a 3⇄4 draw; mirrors the wp.rs tests.
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![], vec![a(1)]));
        b.add_rule(GroundRule::new(a(1), vec![], vec![a(2)]));
        b.add_rule(GroundRule::new(a(3), vec![], vec![a(4)]));
        b.add_rule(GroundRule::new(a(4), vec![], vec![a(3)]));
        let p = b.clone().finish();
        let res = ModularEngine::new(&p).solve();
        assert_eq!(res.value(a(2)), Truth::False);
        assert_eq!(res.value(a(1)), Truth::True);
        assert_eq!(res.value(a(0)), Truth::False);
        assert_eq!(res.value(a(3)), Truth::Unknown);
        assert_eq!(res.value(a(4)), Truth::Unknown);
        agree_with_global(&b);
    }

    #[test]
    fn zero_missing_rule_does_not_double_credit_later_rules() {
        // Regression: `h ← ∅` fires during setup; the rule `y ← h, x`
        // (initialized afterwards) must not see h as already satisfied AND
        // receive a propagation decrement for it — that double credit let
        // the unfounded y/x positive cycle come out true. All of y, x must
        // be false; h is true.
        let (y, h, x) = (a(0), a(1), a(2));
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(y, vec![h, x], vec![]));
        b.add_rule(GroundRule::new(h, vec![], vec![]));
        b.add_rule(GroundRule::new(x, vec![y], vec![]));
        b.add_rule(GroundRule::new(h, vec![y], vec![]));
        let p = b.clone().finish();
        let res = ModularEngine::new(&p).solve();
        assert_eq!(res.value(h), Truth::True);
        assert_eq!(res.value(y), Truth::False);
        assert_eq!(res.value(x), Truth::False);
        agree_with_global(&b);
    }

    #[test]
    fn positive_loops_are_unfounded_in_definite_components() {
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![a(1)], vec![]));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![]));
        b.add_fact(a(2));
        b.add_rule(GroundRule::new(a(3), vec![a(2), a(0)], vec![]));
        agree_with_global(&b);
    }

    #[test]
    fn facts_inside_recursive_components_are_true() {
        // a0 is a fact and also on a negative cycle with a1.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(0), vec![], vec![a(1)]));
        b.add_rule(GroundRule::new(a(1), vec![], vec![a(0)]));
        let p = b.clone().finish();
        let res = ModularEngine::new(&p).solve();
        assert_eq!(res.value(a(0)), Truth::True);
        assert_eq!(res.value(a(1)), Truth::False);
        agree_with_global(&b);
    }

    #[test]
    fn incremental_reuse_copies_unchanged_component_verdicts() {
        // Base: a fact chain plus a draw cycle (genuinely unknown). Grow
        // the program with an independent chain; every untouched component
        // must be reused verbatim and the model must agree with a fresh
        // solve — including the reused Unknowns.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![]));
        b.add_rule(GroundRule::new(a(2), vec![], vec![a(3)]));
        b.add_rule(GroundRule::new(a(3), vec![], vec![a(2)]));
        let base = b.clone().finish();
        let base_res = ModularEngine::new(&base).solve();
        assert!(base_res.memo.is_some(), "modular solves carry a memo");

        b.add_fact(a(4));
        b.add_rule(GroundRule::new(a(5), vec![a(4)], vec![a(1)]));
        let grown = b.finish();
        let inc = ModularEngine::new(&grown).solve_incremental(Some((&base, &base_res)));
        let fresh = ModularEngine::new(&grown).solve();
        for &atom in grown.atoms() {
            assert_eq!(inc.value(atom), fresh.value(atom), "on {atom:?}");
        }
        // {a0}, {a1} and the {a2,a3} cycle are untouched: all reused.
        let stats = inc.stats.unwrap();
        assert_eq!(stats.components_reused, 3, "{stats:?}");
        assert_eq!(inc.value(a(2)), Truth::Unknown, "reused unknown survives");
        assert_eq!(inc.value(a(5)), Truth::False, "new rule evaluated fresh");
    }

    #[test]
    fn incremental_reuse_rejects_components_with_changed_inputs() {
        // Base (no facts): a(1) ← a(0) ← a(2), everything false. Growing
        // the program with the fact a(0) changes a(0)'s own fingerprint
        // (fact bit) and a(1)'s external input — neither may be reused.
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![]));
        b.add_rule(GroundRule::new(a(0), vec![a(2)], vec![]));
        let base = b.clone().finish();
        let base_res = ModularEngine::new(&base).solve();
        assert_eq!(base_res.value(a(1)), Truth::False);

        b.add_fact(a(0));
        let grown = b.finish();
        let inc = ModularEngine::new(&grown).solve_incremental(Some((&base, &base_res)));
        assert_eq!(inc.value(a(0)), Truth::True);
        assert_eq!(inc.value(a(1)), Truth::True, "stale False must not leak");
        // Only {a2} (no rules, no facts, unchanged) can be reused.
        assert_eq!(inc.stats.unwrap().components_reused, 1);
    }

    #[test]
    fn empty_program() {
        let p = GroundProgramBuilder::new().finish();
        let res = ModularEngine::new(&p).solve();
        assert_eq!(res.stages, 0);
        assert_eq!(res.stats.unwrap().components, 0);
    }
}
