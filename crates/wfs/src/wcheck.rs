//! WCHECK (Section 4): deciding membership of a single ground atom in
//! `WFS(D, Σ)`, with extractable certificates.
//!
//! The paper's WCHECK is an *alternating* algorithm: it guesses a root-to-
//! atom path through `F⁺(D ∪ Σf)` and verifies that the side literals of
//! the rules along the path belong to the well-founded model, launching
//! subcomputations per side literal. A deterministic machine realizes the
//! same decision by (1) restricting attention to the atom's *dependency
//! cone* — the instances reachable from it through bodies, which is exactly
//! the part of the program WCHECK's subcomputations may touch — and
//! (2) running a fixpoint engine on that cone (the splitting property of
//! the WFS guarantees the cone-local model agrees with the global one).
//! The existential path-guessing reappears here as *certificate
//! extraction*: for a true atom we return the guard path `a₀ → a₁ → … → a`
//! plus per-rule side-literal justifications, which is precisely the
//! witness WCHECK guesses; `verify` re-checks a certificate independently
//! of any fixpoint engine.

use wfdl_chase::{ChaseSegment, InstanceId};
use wfdl_core::{AtomId, BitSet, FxHashMap, FxHashSet, Interp, Truth};
use wfdl_storage::{GroundProgram, GroundProgramBuilder, GroundRule};

/// Sentinel for the dense per-segment-atom arrays used during certificate
/// extraction.
const NONE: u32 = u32::MAX;

/// Extracts the dependency cone of `targets` from a segment-extracted
/// ground program: all atoms and rules that can influence the targets'
/// truth values (transitively through positive and negative bodies).
pub fn dependency_cone(ground: &GroundProgram, targets: &[AtomId]) -> GroundProgram {
    let mut relevant: FxHashSet<AtomId> = FxHashSet::default();
    let mut queue: Vec<AtomId> = Vec::new();
    for &t in targets {
        if relevant.insert(t) {
            queue.push(t);
        }
    }
    let mut rules: Vec<GroundRule> = Vec::new();
    let mut included: FxHashSet<usize> = FxHashSet::default();
    let fact_set: FxHashSet<AtomId> = ground.facts().iter().copied().collect();
    let mut facts: Vec<AtomId> = Vec::new();
    while let Some(a) = queue.pop() {
        if fact_set.contains(&a) {
            facts.push(a);
        }
        for &rid in ground.rules_with_head(a) {
            if !included.insert(rid.index()) {
                continue;
            }
            let rule = ground.rule(rid);
            rules.push(rule.clone());
            for &b in rule.pos.iter().chain(rule.neg.iter()) {
                if relevant.insert(b) {
                    queue.push(b);
                }
            }
        }
    }
    let mut b = GroundProgramBuilder::new();
    for f in facts {
        b.add_fact(f);
    }
    for r in rules {
        b.add_rule(r);
    }
    b.finish()
}

/// Decides `atom ∈ WFS(D,Σ)` demand-drivenly: cone extraction plus a
/// fixpoint on the cone only. Returns the atom's truth value.
pub fn decide(ground: &GroundProgram, atom: AtomId) -> Truth {
    if !ground.mentions(atom) {
        return Truth::False; // no forward proof at all
    }
    let cone = dependency_cone(ground, &[atom]);
    let res = crate::wp::WpEngine::new(&cone).solve(crate::wp::StepMode::Accelerated);
    res.value(atom)
}

/// A derivation certificate for a **true** atom: the witness structure
/// WCHECK guesses. `path` is the guard chain from a database fact to the
/// atom; `steps` justifies each edge: all non-guard positive side atoms are
/// recursively true (indices into `supports`), and all negative side atoms
/// are false in the model.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Guard chain `a₀ (fact), a₁, …, a_k = atom`.
    pub path: Vec<AtomId>,
    /// The rule instance deriving each non-root path element.
    pub steps: Vec<InstanceId>,
    /// Recursive certificates for the positive side literals used anywhere
    /// along the path (atom → certificate), shared across steps.
    pub supports: FxHashMap<AtomId, Certificate>,
    /// Negative side literals relied upon (must be false in the model).
    pub hypotheses: Vec<AtomId>,
}

/// Extracts a certificate for a true atom from a solved segment.
///
/// Returns `None` if the atom is not true in `interp`. The extraction
/// replays the strict-mode aliveness closure, so the produced supports are
/// acyclic by construction.
pub fn certify(seg: &ChaseSegment, interp: &Interp, atom: AtomId) -> Option<Certificate> {
    if !interp.is_true(atom) {
        return None;
    }
    // Replay a T-closure over instances whose hypotheses are false in the
    // final model, recording one justifying instance per derived atom in
    // derivation order. Everything runs on dense segment ids: flat arrays,
    // no hashing.
    let n = seg.atoms().len();
    let mut just: Vec<u32> = vec![NONE; n];
    let mut order: Vec<u32> = vec![NONE; n];
    let mut derived = BitSet::with_capacity(n);
    let mut tick = 0u32;
    for &fs in seg.fact_segs() {
        derived.insert(fs.index());
        order[fs.index()] = tick;
        tick += 1;
    }
    // Fixpoint: fire instances whose positive bodies are derived and whose
    // negative bodies are false in the model.
    let mut progress = true;
    while progress {
        progress = false;
        for iid in seg.instance_ids() {
            let h = seg.head_seg(iid).index();
            if derived.contains(h) {
                continue;
            }
            if !seg
                .neg_atoms(iid)
                .iter()
                .all(|&b| interp.is_false(b) || !seg.contains(b))
            {
                continue;
            }
            if !seg.pos_seg(iid).iter().all(|s| derived.contains(s.index())) {
                continue;
            }
            derived.insert(h);
            just[h] = iid.index() as u32;
            order[h] = tick;
            tick += 1;
            progress = true;
        }
    }
    build_certificate(seg, &just, &order, atom)
}

fn build_certificate(
    seg: &ChaseSegment,
    just: &[u32],
    order: &[u32],
    atom: AtomId,
) -> Option<Certificate> {
    // Guard chain.
    let mut path = vec![atom];
    let mut steps = Vec::new();
    let mut supports: FxHashMap<AtomId, Certificate> = FxHashMap::default();
    let mut hypotheses: Vec<AtomId> = Vec::new();
    let mut cur = atom;
    loop {
        let cur_seg = seg.seg_id(cur)?;
        let j = just[cur_seg.index()];
        if j == NONE {
            // The chain must terminate at a fact (no justification entry,
            // but an `order` tick from the fact seeding).
            if order[cur_seg.index()] == NONE {
                return None;
            }
            break;
        }
        let iid = InstanceId::from_index(j as usize);
        steps.push(iid);
        for &b in seg.neg_atoms(iid) {
            hypotheses.push(b);
        }
        let guard_atom = seg.guard_atom(iid);
        for &s in seg.pos_seg(iid) {
            let b = seg.atom_of(s);
            if b == guard_atom || b == cur {
                continue;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = supports.entry(b) {
                // Support atoms were derived strictly earlier in the replay.
                debug_assert!(order[s.index()] < order[cur_seg.index()]);
                let sub = build_certificate(seg, just, order, b)?;
                e.insert(sub);
            }
        }
        cur = guard_atom;
        path.push(cur);
    }
    path.reverse();
    steps.reverse();
    hypotheses.sort_unstable();
    hypotheses.dedup();
    Some(Certificate {
        path,
        steps,
        supports,
        hypotheses,
    })
}

/// Independently verifies a certificate against a model: checks the path
/// structure, the rule instances, the recursive supports, and that every
/// hypothesis is false in `interp`. Does **not** re-run any fixpoint.
pub fn verify(seg: &ChaseSegment, interp: &Interp, cert: &Certificate) -> bool {
    verify_inner(seg, interp, cert, &mut FxHashSet::default())
}

fn verify_inner(
    seg: &ChaseSegment,
    interp: &Interp,
    cert: &Certificate,
    in_progress: &mut FxHashSet<AtomId>,
) -> bool {
    if cert.path.is_empty() || cert.steps.len() + 1 != cert.path.len() {
        return false;
    }
    // Root must be a database fact.
    let root = cert.path[0];
    if !seg.fact_segs().iter().any(|&fs| seg.atom_of(fs) == root) {
        return false;
    }
    for (k, &iid) in cert.steps.iter().enumerate() {
        if iid.index() >= seg.num_instances() {
            return false; // forged instance id
        }
        let guard_atom = seg.guard_atom(iid);
        if guard_atom != cert.path[k] || seg.head_atom(iid) != cert.path[k + 1] {
            return false;
        }
        for &b in seg.neg_atoms(iid) {
            if !interp.is_false(b) && seg.contains(b) {
                return false;
            }
        }
        for &s in seg.pos_seg(iid) {
            let b = seg.atom_of(s);
            if b == guard_atom {
                continue;
            }
            // Side atom: either it appears earlier on the path, or a
            // support certificate vouches for it.
            if cert.path[..=k].contains(&b) {
                continue;
            }
            match cert.supports.get(&b) {
                Some(sub) => {
                    if !in_progress.insert(b) {
                        return false; // cyclic support
                    }
                    let ok =
                        verify_inner(seg, interp, sub, in_progress) && sub.path.last() == Some(&b);
                    in_progress.remove(&b);
                    if !ok {
                        return false;
                    }
                }
                None => return false,
            }
        }
    }
    true
}

/// One-level explanation of why an atom is **false**: for every instance
/// that could derive it, the blocking side literal.
#[derive(Clone, Debug)]
pub struct Refutation {
    /// The refuted atom.
    pub atom: AtomId,
    /// Per deriving instance: the blocker.
    pub blocked: Vec<(InstanceId, Blocker)>,
    /// True when no instance in the segment derives the atom at all.
    pub no_derivation: bool,
}

/// Why one instance cannot fire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Blocker {
    /// A positive body atom that is false in the model.
    PositiveFalse(AtomId),
    /// A negative body atom that is true in the model.
    NegativeTrue(AtomId),
}

/// Explains a false atom. Returns `None` if the atom is not false in the
/// model restricted to the segment.
pub fn refute(seg: &ChaseSegment, interp: &Interp, atom: AtomId) -> Option<Refutation> {
    if !seg.contains(atom) {
        return Some(Refutation {
            atom,
            blocked: Vec::new(),
            no_derivation: true,
        });
    }
    if !interp.is_false(atom) {
        return None;
    }
    let mut blocked = Vec::new();
    for &iid in seg.instances_with_head(atom) {
        let blocker = seg
            .pos_seg(iid)
            .iter()
            .map(|&s| seg.atom_of(s))
            .find(|&b| interp.is_false(b))
            .map(Blocker::PositiveFalse)
            .or_else(|| {
                seg.neg_atoms(iid)
                    .iter()
                    .find(|&&b| interp.is_true(b))
                    .map(|&b| Blocker::NegativeTrue(b))
            });
        // For atoms false in the WFS every deriving instance has a blocker
        // *in the limit*; within an unfounded set the blocker may be a
        // same-stage positive atom, which is still false in the final
        // model, so `find` above succeeds.
        blocked.push((iid, blocker?));
    }
    Some(Refutation {
        atom,
        blocked,
        no_derivation: seg.instances_with_head(atom).is_empty(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve, WfsOptions};
    use wfdl_chase::paper::example4;
    use wfdl_core::Universe;

    #[test]
    fn decide_agrees_with_full_solve_on_example4() {
        let mut u = Universe::new();
        let (db, prog) = example4(&mut u);
        let model = solve(&mut u, &db, &prog, WfsOptions::depth(5));
        for sa in model.segment.atoms() {
            assert_eq!(
                decide(&model.ground, sa.atom),
                model.value(sa.atom),
                "atom {}",
                u.display_atom(sa.atom)
            );
        }
    }

    #[test]
    fn cone_is_smaller_than_program() {
        let mut u = Universe::new();
        let (db, prog) = example4(&mut u);
        let model = solve(&mut u, &db, &prog, WfsOptions::depth(8));
        // The cone of R(0,0,1) (a fact) is tiny.
        let r = u.lookup_pred("R").unwrap();
        let zero = u.lookup_constant("0").unwrap();
        let one = u.lookup_constant("1").unwrap();
        let r001 = u.atom(r, vec![zero, zero, one]).unwrap();
        let cone = dependency_cone(&model.ground, &[r001]);
        assert!(cone.num_rules() < model.ground.num_rules());
        assert_eq!(cone.facts(), &[r001]);
    }

    #[test]
    fn certificate_for_t0_verifies() {
        let mut u = Universe::new();
        let (db, prog) = example4(&mut u);
        let model = solve(&mut u, &db, &prog, WfsOptions::depth(6));
        let t = u.lookup_pred("T").unwrap();
        let zero = u.lookup_constant("0").unwrap();
        let t0 = u.atom(t, vec![zero]).unwrap();
        assert!(model.is_true(t0));
        let cert = certify(&model.segment, &model.result.interp, t0)
            .expect("true atom must have a certificate");
        assert_eq!(*cert.path.last().unwrap(), t0);
        // T(0) is derived from a P-atom by the rule with hypothesis ¬S(0);
        // S(0) must be among the hypotheses.
        let s = u.lookup_pred("S").unwrap();
        let s0 = u.atom(s, vec![zero]).unwrap();
        assert!(cert.hypotheses.contains(&s0));
        assert!(verify(&model.segment, &model.result.interp, &cert));
    }

    #[test]
    fn tampered_certificate_fails_verification() {
        let mut u = Universe::new();
        let (db, prog) = example4(&mut u);
        let model = solve(&mut u, &db, &prog, WfsOptions::depth(6));
        let t = u.lookup_pred("T").unwrap();
        let zero = u.lookup_constant("0").unwrap();
        let t0 = u.atom(t, vec![zero]).unwrap();
        let mut cert = certify(&model.segment, &model.result.interp, t0).unwrap();
        // Corrupt the path root.
        let s = u.lookup_pred("S").unwrap();
        let s0 = u.atom(s, vec![zero]).unwrap();
        cert.path[0] = s0;
        assert!(!verify(&model.segment, &model.result.interp, &cert));
    }

    #[test]
    fn refutation_explains_s0() {
        let mut u = Universe::new();
        let (db, prog) = example4(&mut u);
        let model = solve(&mut u, &db, &prog, WfsOptions::depth(6));
        let s = u.lookup_pred("S").unwrap();
        let zero = u.lookup_constant("0").unwrap();
        let s0 = u.atom(s, vec![zero]).unwrap();
        assert!(model.is_false(s0));
        let r = refute(&model.segment, &model.result.interp, s0).unwrap();
        assert!(!r.no_derivation);
        assert!(!r.blocked.is_empty());
        // Every S(0) derivation is blocked by a true P-atom (its negative
        // side literal ¬P(0,Z) fails).
        for (_, blocker) in &r.blocked {
            assert!(matches!(blocker, Blocker::NegativeTrue(_)));
        }
    }

    #[test]
    fn refutation_of_absent_atom_is_no_derivation() {
        let mut u = Universe::new();
        let (db, prog) = example4(&mut u);
        let model = solve(&mut u, &db, &prog, WfsOptions::depth(4));
        let q = u.lookup_pred("Q").unwrap();
        let zero = u.lookup_constant("0").unwrap();
        let q0 = u.atom(q, vec![zero]).unwrap();
        let r = refute(&model.segment, &model.result.interp, q0).unwrap();
        assert!(r.no_derivation);
    }
}
