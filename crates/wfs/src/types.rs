//! Atom types and the locality property (Section 3, Lemmas 10/11).
//!
//! The `P`-type of an atom `a` is the pair `(a, S)` where `S` collects all
//! literals `ℓ ∈ WFS(P)` with `dom(ℓ) ⊆ dom(a)`. The paper's locality
//! lemmas say that the truth of everything in the subtree below a node
//! depends only on the (isomorphism class of the) type of its label — and
//! since there are finitely many non-isomorphic types over a schema, query
//! answering only needs a bounded-depth part of the chase (Proposition 12,
//! the `δ` bound).
//!
//! This module makes that machinery executable:
//!
//! * [`atom_type`] — the type of an atom in a solved segment;
//! * [`CanonicalType`] — an `X`-isomorphism-invariant canonical form
//!   (`X` = the data constants, which every isomorphism must fix);
//! * [`subtree_signature`] — a canonical fingerprint of the truth values in
//!   the `k`-step derivation cone below an atom;
//! * [`TypeCensus`] — counts distinct canonical types across a segment:
//!   the count plateaus as segments deepen while the atom count grows,
//!   which is the finite-type argument behind decidability (experiment
//!   E11).

use wfdl_chase::ChaseSegment;
use wfdl_core::{AtomId, FxHashMap, FxHashSet, Interp, PredId, TermId, TermNode, Truth, Universe};

/// The type `(a, S)` of an atom: all decided literals over `dom(a)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtomType {
    /// The atom itself.
    pub atom: AtomId,
    /// Literals `ℓ` with `dom(ℓ) ⊆ dom(a)`: `(ground atom, truth)` pairs
    /// for every atom formable over the argument terms, in a fixed
    /// enumeration order.
    pub literals: Vec<(AtomId, Truth)>,
}

/// Truth of `atom` in a segment-solved model (absent atoms are false).
fn value_in(seg: &ChaseSegment, interp: &Interp, atom: AtomId) -> Truth {
    if seg.contains(atom) {
        interp.value(atom)
    } else {
        Truth::False
    }
}

/// Computes the type of `atom`: enumerates every atom formable from the
/// predicates of the schema over `dom(atom)` and records its truth value.
///
/// The enumeration is `Σ_P |dom(a)|^arity(P)` atoms — the `(2w)^w`-ish
/// factor inside the paper's `δ`.
pub fn atom_type(
    universe: &mut Universe,
    seg: &ChaseSegment,
    interp: &Interp,
    atom: AtomId,
) -> AtomType {
    let mut dom: Vec<TermId> = universe.atoms.args(atom).to_vec();
    dom.sort_unstable();
    dom.dedup();
    let preds: Vec<PredId> = universe.pred_ids().collect();
    let mut literals = Vec::new();
    for pred in preds {
        let arity = universe.pred_arity(pred);
        // Enumerate dom^arity tuples in lexicographic order.
        let mut idx = vec![0usize; arity];
        loop {
            let args: Vec<TermId> = idx.iter().map(|&i| dom[i]).collect();
            // The odometer emits exactly `arity` terms per tuple.
            #[allow(clippy::expect_used)]
            let ground = universe.atom(pred, args).expect("arity respected");
            literals.push((ground, value_in(seg, interp, ground)));
            // Advance the odometer.
            let mut pos = arity;
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < dom.len() {
                    break;
                }
                idx[pos] = 0;
            }
            if idx.iter().all(|&i| i == 0) {
                break;
            }
        }
        if arity == 0 {
            // The odometer above handles arity 0 by emitting one tuple and
            // terminating (idx is empty → all-zero immediately).
        }
    }
    AtomType { atom, literals }
}

/// A canonical, `X`-isomorphism-invariant rendering of a type: labelled
/// nulls are renamed to their first-occurrence position in the atom's
/// argument list, while data constants (the set `X` every isomorphism
/// fixes) stay themselves.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalType {
    /// Predicate of the typed atom.
    pub pred: PredId,
    /// Canonicalized argument pattern of the atom.
    pub args: Vec<CanonTerm>,
    /// Sorted canonical literals.
    pub literals: Vec<(PredId, Vec<CanonTerm>, Truth)>,
}

/// A term in canonical form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CanonTerm {
    /// A data constant (fixed by every X-isomorphism).
    Const(TermId),
    /// The `i`-th distinct labelled null in the atom's argument order.
    Null(u32),
}

/// Canonicalizes a type. Two atoms have X-isomorphic types (X = constants)
/// iff their canonical types are equal.
pub fn canonicalize(universe: &Universe, ty: &AtomType) -> CanonicalType {
    let mut renaming: FxHashMap<TermId, u32> = FxHashMap::default();
    let canon = |t: TermId, renaming: &mut FxHashMap<TermId, u32>| -> CanonTerm {
        if matches!(universe.terms.node(t), TermNode::Const(_)) {
            CanonTerm::Const(t)
        } else {
            let next = renaming.len() as u32;
            CanonTerm::Null(*renaming.entry(t).or_insert(next))
        }
    };
    let node = universe.atoms.node(ty.atom);
    let args: Vec<CanonTerm> = node.args.iter().map(|&t| canon(t, &mut renaming)).collect();
    let mut literals: Vec<(PredId, Vec<CanonTerm>, Truth)> = ty
        .literals
        .iter()
        .map(|&(atom, truth)| {
            let n = universe.atoms.node(atom);
            let cargs = n.args.iter().map(|&t| canon(t, &mut renaming)).collect();
            (n.pred, cargs, truth)
        })
        .collect();
    literals.sort();
    CanonicalType {
        pred: node.pred,
        args,
        literals,
    }
}

/// A canonical fingerprint of the truth values in the derivation cone up
/// to `k` instance-steps below `atom` (the subtree `T` of Lemma 10,
/// condensed). New terms encountered below are canonicalized in discovery
/// order, so fingerprints of isomorphic subtrees coincide.
pub fn subtree_signature(
    universe: &Universe,
    seg: &ChaseSegment,
    interp: &Interp,
    atom: AtomId,
    k: u32,
) -> Vec<(u32, PredId, Vec<CanonTerm>, Truth)> {
    let mut renaming: FxHashMap<TermId, u32> = FxHashMap::default();
    let canon = |t: TermId, renaming: &mut FxHashMap<TermId, u32>| -> CanonTerm {
        if matches!(universe.terms.node(t), TermNode::Const(_)) {
            CanonTerm::Const(t)
        } else {
            let next = renaming.len() as u32;
            CanonTerm::Null(*renaming.entry(t).or_insert(next))
        }
    };
    // Seed the renaming with the root atom's arguments (in order).
    for &t in universe.atoms.args(atom).iter() {
        let _ = canon(t, &mut renaming);
    }

    let mut signature = Vec::new();
    let mut frontier: Vec<AtomId> = vec![atom];
    let mut seen: FxHashSet<AtomId> = FxHashSet::default();
    seen.insert(atom);
    for depth in 0..=k {
        // Record this layer, sorted canonically for determinism.
        let mut layer: Vec<(PredId, Vec<CanonTerm>, Truth)> = frontier
            .iter()
            .map(|&a| {
                let n = universe.atoms.node(a);
                let cargs: Vec<CanonTerm> =
                    n.args.iter().map(|&t| canon(t, &mut renaming)).collect();
                (n.pred, cargs, value_in(seg, interp, a))
            })
            .collect();
        layer.sort();
        for (pred, args, truth) in layer {
            signature.push((depth, pred, args, truth));
        }
        if depth == k {
            break;
        }
        // Children: heads of instances guarded by frontier atoms.
        let mut next: Vec<AtomId> = Vec::new();
        for &a in &frontier {
            for &iid in seg.instances_with_guard(a) {
                let head = seg.head_atom(iid);
                if seen.insert(head) {
                    next.push(head);
                }
            }
        }
        // Deterministic order before canonical renaming extends: sort by
        // the *parent-relative* rendering. AtomId order is stable per
        // construction order, which for equal-depth guards mirrors rule
        // order — adequate for signature comparison.
        next.sort_unstable();
        frontier = next;
    }
    signature
}

/// Convenience: computes and canonicalizes an atom's type in one call.
pub fn canonical_type_of(
    universe: &mut Universe,
    seg: &ChaseSegment,
    interp: &Interp,
    atom: AtomId,
) -> CanonicalType {
    let ty = atom_type(universe, seg, interp, atom);
    canonicalize(universe, &ty)
}

/// Census of distinct canonical types across a solved segment.
#[derive(Clone, Debug, Default)]
pub struct TypeCensus {
    /// Number of atoms inspected.
    pub atoms: usize,
    /// Number of distinct canonical types.
    pub distinct_types: usize,
}

/// Counts distinct canonical types over all segment atoms.
pub fn type_census(universe: &mut Universe, seg: &ChaseSegment, interp: &Interp) -> TypeCensus {
    let mut set: FxHashSet<CanonicalType> = FxHashSet::default();
    let atoms: Vec<AtomId> = seg.atoms().iter().map(|sa| sa.atom).collect();
    for atom in &atoms {
        let ty = atom_type(universe, seg, interp, *atom);
        set.insert(canonicalize(universe, &ty));
    }
    TypeCensus {
        atoms: atoms.len(),
        distinct_types: set.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::ForwardEngine;
    use wfdl_chase::{paper::example4, ChaseBudget, ChaseSegment};

    fn solved(depth: u32) -> (Universe, ChaseSegment, Interp) {
        let mut u = Universe::new();
        let (db, sigma) = example4(&mut u);
        let seg = ChaseSegment::build(&mut u, &db, &sigma, ChaseBudget::depth(depth));
        let interp = ForwardEngine::new(&seg).solve().interp;
        (u, seg, interp)
    }

    fn r_chain_atoms(u: &Universe, seg: &ChaseSegment) -> Vec<AtomId> {
        let r = u.lookup_pred("R").unwrap();
        let mut atoms: Vec<_> = seg
            .atoms()
            .iter()
            .filter(|sa| u.atoms.pred(sa.atom) == r)
            .map(|sa| (sa.depth, sa.atom))
            .collect();
        atoms.sort();
        atoms.into_iter().map(|(_, a)| a).collect()
    }

    #[test]
    fn deep_r_atoms_share_a_canonical_type() {
        let (mut u, seg, interp) = solved(8);
        let chain = r_chain_atoms(&u, &seg);
        // From depth 2 on, every R(0, t_i, t_{i+1}) has both inner terms
        // null with the same surrounding literal pattern: equal canonical
        // types. (Depth ≤ 1 atoms mention the constants 0/1 and differ.)
        let t2 = canonical_type_of(&mut u, &seg, &interp, chain[2]);
        let t3 = canonical_type_of(&mut u, &seg, &interp, chain[3]);
        let t4 = canonical_type_of(&mut u, &seg, &interp, chain[4]);
        assert_eq!(t2, t3);
        assert_eq!(t3, t4);
        let t0 = canonical_type_of(&mut u, &seg, &interp, chain[0]);
        assert_ne!(t0, t2, "the root mentions constants 0 and 1");
    }

    #[test]
    fn locality_equal_types_give_equal_subtree_signatures() {
        // Lemma 11, executable: atoms with X-isomorphic types generate
        // isomorphic truth assignments below them.
        let (mut u, seg, interp) = solved(10);
        let chain = r_chain_atoms(&u, &seg);
        let pairs = [(2usize, 3usize), (3, 5), (2, 6)];
        for (i, j) in pairs {
            let ti = canonical_type_of(&mut u, &seg, &interp, chain[i]);
            let tj = canonical_type_of(&mut u, &seg, &interp, chain[j]);
            assert_eq!(ti, tj, "chain atoms {i} and {j} should be type-isomorphic");
            let si = subtree_signature(&u, &seg, &interp, chain[i], 2);
            let sj = subtree_signature(&u, &seg, &interp, chain[j], 2);
            assert_eq!(
                si, sj,
                "locality: equal types must give equal depth-2 signatures ({i} vs {j})"
            );
        }
    }

    #[test]
    fn type_census_plateaus_while_atoms_grow() {
        // The finite-type argument behind the δ bound: atom counts grow
        // linearly with depth, distinct type counts stop growing.
        let mut census = Vec::new();
        for depth in [4u32, 6, 8, 10] {
            let (mut u, seg, interp) = solved(depth);
            census.push(type_census(&mut u, &seg, &interp));
        }
        assert!(census.windows(2).all(|w| w[1].atoms > w[0].atoms));
        let types: Vec<usize> = census.iter().map(|c| c.distinct_types).collect();
        assert_eq!(
            types[types.len() - 2],
            types[types.len() - 1],
            "distinct canonical types must plateau: {types:?}"
        );
    }

    #[test]
    fn canonical_type_distinguishes_truth_patterns() {
        let (mut u, seg, interp) = solved(6);
        // S(0) (false) and T(0) (true) have the same domain {0} but
        // different literal truth values → different canonical types.
        let s = u.lookup_pred("S").unwrap();
        let t = u.lookup_pred("T").unwrap();
        let zero = u.lookup_constant("0").unwrap();
        let s0 = u.atoms.lookup(s, &[zero]).unwrap();
        let t0 = u.atoms.lookup(t, &[zero]).unwrap();
        let ts0 = canonical_type_of(&mut u, &seg, &interp, s0);
        let tt0 = canonical_type_of(&mut u, &seg, &interp, t0);
        assert_ne!(ts0, tt0);
    }

    #[test]
    fn nullary_predicates_enumerate_once() {
        let mut u = Universe::new();
        let (db, sigma) = example4(&mut u);
        let _flag = u.pred("flag", 0).unwrap();
        let seg = ChaseSegment::build(&mut u, &db, &sigma, ChaseBudget::depth(3));
        let interp = ForwardEngine::new(&seg).solve().interp;
        let p = u.lookup_pred("P").unwrap();
        let zero = u.lookup_constant("0").unwrap();
        let p00 = u.atoms.lookup(p, &[zero, zero]).unwrap();
        let ty = atom_type(&mut u, &seg, &interp, p00);
        let flag_lits = ty
            .literals
            .iter()
            .filter(|(a, _)| u.pred_name(u.atoms.pred(*a)) == "flag")
            .count();
        assert_eq!(flag_lits, 1);
    }
}
