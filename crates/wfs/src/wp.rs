//! The definitional WFS engine: iterating `W_P(I) = T_P(I) ∪ ¬.U_P(I)`
//! (Section 2.6) to its least fixpoint on a finite ground normal program.
//!
//! Two stepping regimes share one fixpoint:
//!
//! * [`StepMode::Literal`] applies `W_P` exactly as defined, one application
//!   per stage — this is what reproduces the paper's stage-by-stage
//!   Example 9 arithmetic;
//! * [`StepMode::Accelerated`] closes `T_P` to saturation before each
//!   unfounded-set computation, which reaches the same least fixpoint in far
//!   fewer (and cheaper) rounds.
//!
//! The greatest unfounded set `U_P(I)` is computed as the complement of the
//! least fixpoint of the "possibly founded" operator
//! `Γ_I(X) = {a | ∃r: H(r) = a, ∀b ∈ B⁺(r): ¬b ∉ I ∧ b ∈ X, ∀b ∈ B⁻(r): b ∉ I}`
//! — the standard van Gelder characterization — using Dowling–Gallier
//! counters.

use crate::result::EngineResult;
use wfdl_core::BitSet;
use wfdl_storage::GroundProgram;

/// How `W_P` is iterated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StepMode {
    /// One `W_P` application per stage (the paper's definition).
    Literal,
    /// `T_P`-closure before each unfounded-set round (same fixpoint).
    #[default]
    Accelerated,
}

/// The `W_P` fixpoint engine. Borrows the ground program's dense local
/// ids and CSR indexes directly — construction allocates nothing beyond
/// the two option bitsets.
pub struct WpEngine<'a> {
    prog: &'a GroundProgram,
    /// Atoms that may never be declared false (excluded from every
    /// unfounded set). Empty under the paper's UNA semantics; populated
    /// with null-containing atoms to obtain the conservative no-UNA
    /// approximation used in the Example 2 comparison (labelled nulls might
    /// denote equal values, so non-derivation of a null-atom cannot justify
    /// its falsity).
    frozen: BitSet,
    /// Atoms assumed **undefined** by an outer evaluation (the SCC-modular
    /// engine substitutes lower-component unknowns this way): they are
    /// never declared false *and* they seed the possibly-founded set, so a
    /// head depending positively on one stays undefined instead of
    /// collapsing to false. The caller guarantees they head no rule and
    /// are not facts, so they can never become true either.
    assumed: BitSet,
}

impl<'a> WpEngine<'a> {
    /// Prepares the engine for a ground program.
    pub fn new(prog: &'a GroundProgram) -> Self {
        WpEngine {
            prog,
            frozen: BitSet::new(),
            assumed: BitSet::new(),
        }
    }

    /// Freezes a set of atoms: they are never added to an unfounded set,
    /// so rules negating them never fire. Unknown atoms are returned by
    /// [`WpEngine::solve`] as `Unknown`.
    pub fn with_frozen(mut self, atoms: impl IntoIterator<Item = wfdl_core::AtomId>) -> Self {
        for a in atoms {
            if let Some(i) = self.prog.local_id(a) {
                self.frozen.insert(i as usize);
            }
        }
        self
    }

    /// Marks local atom ids as externally-undefined (never false, and
    /// seeding the possibly-founded set). Used by the SCC-modular engine.
    ///
    /// An assumed atom must have no derivation in this program — heading a
    /// rule or being a fact would let `T_P` prove it true while the
    /// unfounded computation simultaneously treats it as permanently
    /// undefined, yielding a model that is neither the program's WFS nor
    /// the intended partial evaluation.
    pub fn with_assumed_unknown(mut self, local_ids: impl IntoIterator<Item = u32>) -> Self {
        for i in local_ids {
            debug_assert!(
                self.prog.rules_with_head_local(i).is_empty(),
                "assumed-unknown atom {i} heads a rule"
            );
            debug_assert!(
                !self.prog.facts_local().contains(&i),
                "assumed-unknown atom {i} is a fact"
            );
            self.assumed.insert(i as usize);
        }
        self
    }

    /// The ground program this engine evaluates.
    pub fn ground(&self) -> &GroundProgram {
        self.prog
    }

    /// Computes `lfp(W_P)`.
    pub fn solve(&self, mode: StepMode) -> EngineResult {
        let n = self.prog.num_atoms();
        let mut truth = State::new(n);
        let mut stage = 0u32;
        loop {
            stage += 1;
            let changed = match mode {
                StepMode::Literal => self.literal_step(&mut truth, stage),
                StepMode::Accelerated => self.accelerated_step(&mut truth, stage),
            };
            if !changed {
                // The counted stage did nothing; report the last productive one.
                stage -= 1;
                break;
            }
        }
        truth.into_result(self.prog, stage)
    }

    /// One application of `W_P`: `T_P(I)` (single step) plus `¬.U_P(I)`.
    #[allow(clippy::needless_range_loop)] // parallel arrays are indexed together
    fn literal_step(&self, s: &mut State, stage: u32) -> bool {
        let d = self.prog;
        let mut new_true: Vec<u32> = Vec::new();
        for &f in d.facts_local() {
            if !s.is_true(f) {
                new_true.push(f);
            }
        }
        'rules: for r in 0..d.num_rules() {
            let h = d.head_local(r);
            if s.is_true(h) {
                continue;
            }
            for &b in d.pos_local(r) {
                if !s.is_true(b) {
                    continue 'rules;
                }
            }
            for &b in d.neg_local(r) {
                if !s.is_false(b) {
                    continue 'rules;
                }
            }
            new_true.push(h);
        }
        let unfounded = self.greatest_unfounded(s);
        let mut changed = false;
        for a in new_true {
            changed |= s.set_true(a, stage);
        }
        for a in unfounded {
            if !s.is_false(a) {
                changed |= s.set_false(a, stage);
            }
        }
        changed
    }

    /// `T_P`-closure followed by one unfounded-set round.
    fn accelerated_step(&self, s: &mut State, stage: u32) -> bool {
        let mut changed = self.tp_closure(s, stage);
        let unfounded = self.greatest_unfounded(s);
        for a in unfounded {
            if !s.is_false(a) {
                changed |= s.set_false(a, stage);
            }
        }
        changed
    }

    /// Saturates `T_P` over the current interpretation with counters.
    #[allow(clippy::needless_range_loop)] // parallel arrays are indexed together
    fn tp_closure(&self, s: &mut State, stage: u32) -> bool {
        let d = self.prog;
        // missing[r] = positive body atoms not yet true.
        let mut missing: Vec<u32> = (0..d.num_rules())
            .map(|r| d.pos_local(r).iter().filter(|&&b| !s.is_true(b)).count() as u32)
            .collect();
        let mut queue: Vec<u32> = Vec::new();
        let mut changed = false;
        let fire = |r: usize, s: &mut State, queue: &mut Vec<u32>, changed: &mut bool| {
            // All negatives must be false in the CURRENT interpretation
            // (T_P requires ¬.B⁻(r) ⊆ I, which is stable within a stage).
            if d.neg_local(r).iter().all(|&b| s.is_false(b)) {
                let h = d.head_local(r);
                if s.set_true(h, stage) {
                    *changed = true;
                    queue.push(h);
                }
            }
        };
        for &f in d.facts_local() {
            if s.set_true(f, stage) {
                changed = true;
                queue.push(f);
            }
        }
        // Already-satisfied rules (e.g. true atoms from earlier stages).
        for r in 0..d.num_rules() {
            if missing[r] == 0 {
                fire(r, s, &mut queue, &mut changed);
            }
        }
        while let Some(a) = queue.pop() {
            for &rid in d.rules_with_pos_local(a) {
                let r = rid.index();
                // Only decrement for atoms that just became true; an atom is
                // enqueued exactly once (set_true is idempotent). Bodies are
                // deduplicated by GroundRule::new — the same invariant
                // scc.rs's single-decrement propagation relies on — so this
                // recount always finds exactly one occurrence; it is kept as
                // a guard in case that invariant ever changes.
                if missing[r] > 0 {
                    missing[r] -= d.pos_local(r).iter().filter(|&&b| b == a).count() as u32;
                    if missing[r] == 0 {
                        fire(r, s, &mut queue, &mut changed);
                    }
                }
            }
        }
        changed
    }

    /// The greatest unfounded set `U_P(I)` (dense indices).
    #[allow(clippy::needless_range_loop)] // parallel arrays are indexed together
    fn greatest_unfounded(&self, s: &State) -> Vec<u32> {
        let d = self.prog;
        let n = d.num_atoms();
        let mut founded = BitSet::with_capacity(n);
        let mut queue: Vec<u32> = Vec::new();

        // A rule can support its head iff no positive body atom is false in
        // I and no negative body atom is true in I.
        let mut live = vec![false; d.num_rules()];
        let mut missing: Vec<u32> = vec![0; d.num_rules()];
        for r in 0..d.num_rules() {
            let pos_ok = d.pos_local(r).iter().all(|&b| !s.is_false(b));
            let neg_ok = d.neg_local(r).iter().all(|&b| !s.is_true(b));
            live[r] = pos_ok && neg_ok;
            if live[r] {
                missing[r] = d.pos_local(r).len() as u32;
                if missing[r] == 0 {
                    let h = d.head_local(r);
                    if founded.insert(h as usize) {
                        queue.push(h);
                    }
                }
            }
        }
        for &f in d.facts_local() {
            if founded.insert(f as usize) {
                queue.push(f);
            }
        }
        // Externally-undefined atoms are possibly true, so they count as
        // founded support — without becoming derivable in T_P.
        for a in self.assumed.iter() {
            if founded.insert(a) {
                queue.push(a as u32);
            }
        }
        while let Some(a) = queue.pop() {
            for &rid in d.rules_with_pos_local(a) {
                let r = rid.index();
                if !live[r] || missing[r] == 0 {
                    continue;
                }
                missing[r] -= d.pos_local(r).iter().filter(|&&b| b == a).count() as u32;
                if missing[r] == 0 {
                    let h = d.head_local(r);
                    if founded.insert(h as usize) {
                        queue.push(h);
                    }
                }
            }
        }
        (0..n as u32)
            .filter(|&a| {
                !founded.contains(a as usize)
                    && !self.frozen.contains(a as usize)
                    && !self.assumed.contains(a as usize)
            })
            .collect()
    }
}

/// Mutable truth state shared by the stepping functions.
struct State {
    truth_true: BitSet,
    truth_false: BitSet,
    stage_of: Vec<u32>,
}

impl State {
    fn new(n: usize) -> Self {
        State {
            truth_true: BitSet::with_capacity(n),
            truth_false: BitSet::with_capacity(n),
            stage_of: vec![0; n],
        }
    }

    #[inline]
    fn is_true(&self, a: u32) -> bool {
        self.truth_true.contains(a as usize)
    }

    #[inline]
    fn is_false(&self, a: u32) -> bool {
        self.truth_false.contains(a as usize)
    }

    fn set_true(&mut self, a: u32, stage: u32) -> bool {
        debug_assert!(!self.is_false(a), "atom {a} set true but already false");
        let fresh = self.truth_true.insert(a as usize);
        if fresh {
            self.stage_of[a as usize] = stage;
        }
        fresh
    }

    fn set_false(&mut self, a: u32, stage: u32) -> bool {
        debug_assert!(!self.is_true(a), "atom {a} set false but already true");
        let fresh = self.truth_false.insert(a as usize);
        if fresh {
            self.stage_of[a as usize] = stage;
        }
        fresh
    }

    fn into_result(self, prog: &GroundProgram, stages: u32) -> EngineResult {
        EngineResult::from_ground(
            prog,
            &self.truth_true,
            &self.truth_false,
            &self.stage_of,
            stages,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdl_core::{AtomId, Truth};
    use wfdl_storage::{GroundProgramBuilder, GroundRule};

    fn a(i: usize) -> AtomId {
        AtomId::from_index(i)
    }

    fn solve(b: GroundProgramBuilder, mode: StepMode) -> EngineResult {
        WpEngine::new(&b.finish()).solve(mode)
    }

    #[test]
    fn positive_chain() {
        // fact a0; a0 -> a1; a1 -> a2. Everything true; a3 mentioned only
        // negatively stays... (not mentioned here). All derivable true.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![]));
        b.add_rule(GroundRule::new(a(2), vec![a(1)], vec![]));
        for mode in [StepMode::Literal, StepMode::Accelerated] {
            let r = solve(b.clone(), mode);
            assert_eq!(r.value(a(0)), Truth::True);
            assert_eq!(r.value(a(1)), Truth::True);
            assert_eq!(r.value(a(2)), Truth::True);
        }
    }

    #[test]
    fn unsupported_atom_is_false() {
        // fact a0; rule a2 -> a1. a2 has no support: both a1,a2 false.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(1), vec![a(2)], vec![]));
        let r = solve(b, StepMode::Accelerated);
        assert_eq!(r.value(a(0)), Truth::True);
        assert_eq!(r.value(a(1)), Truth::False);
        assert_eq!(r.value(a(2)), Truth::False);
    }

    #[test]
    fn negation_simple() {
        // fact a0; a0, not a1 -> a2. a1 unfounded → false; a2 true.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(2), vec![a(0)], vec![a(1)]));
        let r = solve(b, StepMode::Literal);
        assert_eq!(r.value(a(1)), Truth::False);
        assert_eq!(r.value(a(2)), Truth::True);
    }

    #[test]
    fn self_negation_is_unknown() {
        // a0 :- not a0  → a0 unknown (classic).
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![], vec![a(0)]));
        for mode in [StepMode::Literal, StepMode::Accelerated] {
            let r = solve(b.clone(), mode);
            assert_eq!(r.value(a(0)), Truth::Unknown, "{mode:?}");
        }
    }

    #[test]
    fn mutual_negation_is_unknown() {
        // a0 :- not a1. a1 :- not a0. Both unknown.
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![], vec![a(1)]));
        b.add_rule(GroundRule::new(a(1), vec![], vec![a(0)]));
        let r = solve(b, StepMode::Accelerated);
        assert_eq!(r.value(a(0)), Truth::Unknown);
        assert_eq!(r.value(a(1)), Truth::Unknown);
    }

    #[test]
    fn positive_loop_is_false() {
        // a0 :- a1. a1 :- a0. Unfounded pair → both false.
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![a(1)], vec![]));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![]));
        let r = solve(b, StepMode::Literal);
        assert_eq!(r.value(a(0)), Truth::False);
        assert_eq!(r.value(a(1)), Truth::False);
    }

    #[test]
    fn win_move_path_of_three() {
        // Positions 0 -> 1 -> 2 (2 has no move).
        // win(X) :- move(X,Y), not win(Y).  Atom i = win(position i);
        // move atoms folded into rule structure: win0 :- not win1; win1 :- not win2.
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![], vec![a(1)]));
        b.add_rule(GroundRule::new(a(1), vec![], vec![a(2)]));
        let r = solve(b, StepMode::Literal);
        // win2: no rule → false (lost). win1: true (move to lost). win0: false.
        assert_eq!(r.value(a(2)), Truth::False);
        assert_eq!(r.value(a(1)), Truth::True);
        assert_eq!(r.value(a(0)), Truth::False);
    }

    #[test]
    fn draw_cycle_is_unknown() {
        // 0 <-> 1 cycle: both drawn (unknown).
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![], vec![a(1)]));
        b.add_rule(GroundRule::new(a(1), vec![], vec![a(0)]));
        b.add_rule(GroundRule::new(a(2), vec![], vec![a(0)]));
        // 2 -> 0: also drawn? win(2) :- not win(0): win(0) unknown → unknown.
        let r = solve(b, StepMode::Accelerated);
        assert_eq!(r.value(a(0)), Truth::Unknown);
        assert_eq!(r.value(a(1)), Truth::Unknown);
        assert_eq!(r.value(a(2)), Truth::Unknown);
    }

    #[test]
    fn modes_agree_on_nontrivial_program() {
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![a(2)]));
        b.add_rule(GroundRule::new(a(2), vec![a(0)], vec![a(3)]));
        b.add_rule(GroundRule::new(a(3), vec![a(0)], vec![a(4)]));
        b.add_rule(GroundRule::new(a(4), vec![a(1)], vec![]));
        b.add_rule(GroundRule::new(a(5), vec![a(4)], vec![a(5)]));
        let p = b.finish();
        let lit = WpEngine::new(&p).solve(StepMode::Literal);
        let acc = WpEngine::new(&p).solve(StepMode::Accelerated);
        for i in 0..6 {
            assert_eq!(lit.value(a(i)), acc.value(a(i)), "atom {i}");
        }
        // Literal stepping needs at least as many stages.
        assert!(lit.stages >= acc.stages);
    }

    #[test]
    fn duplicate_atom_in_body_counts_once() {
        // head :- b, b (after GroundRule dedup this is a single b).
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(1), vec![a(0), a(0)], vec![]));
        let r = solve(b, StepMode::Accelerated);
        assert_eq!(r.value(a(1)), Truth::True);
    }

    #[test]
    fn stage_numbers_are_recorded() {
        // Chain: stage numbers strictly increase along the chain in
        // Literal mode.
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![]));
        b.add_rule(GroundRule::new(a(2), vec![a(1)], vec![]));
        let r = solve(b, StepMode::Literal);
        let s0 = r.stage_of(a(0)).unwrap();
        let s1 = r.stage_of(a(1)).unwrap();
        let s2 = r.stage_of(a(2)).unwrap();
        assert!(s0 < s1 && s1 < s2, "{s0} {s1} {s2}");
    }
}
