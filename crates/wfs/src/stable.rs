//! Stable models (answer sets) for small ground programs, by exhaustive
//! search — an extension used to validate the classical relationship the
//! paper invokes: *the WFS approximates the answer set semantics*.
//!
//! For every stable model `M`: every well-founded-true atom is in `M` and
//! every well-founded-false atom is absent from `M`. Moreover a total
//! well-founded model **is** the unique stable model. These facts become
//! property tests over random programs (`tests/stable_approximation.rs`).
//!
//! The enumeration is exponential in the atom count and exists for
//! validation only; it refuses programs with more than
//! [`MAX_ATOMS_FOR_ENUMERATION`] atoms.

use wfdl_core::AtomId;
use wfdl_storage::GroundProgram;

/// Upper bound on the atom count for exhaustive enumeration.
pub const MAX_ATOMS_FOR_ENUMERATION: usize = 20;

/// Enumerates all stable models as sorted vectors of true atoms. Returns
/// `None` if the program is too large to enumerate.
pub fn stable_models(prog: &GroundProgram) -> Option<Vec<Vec<AtomId>>> {
    let n = prog.num_atoms();
    if n > MAX_ATOMS_FOR_ENUMERATION {
        return None;
    }
    let mut models = Vec::new();
    for mask in 0u32..(1u32 << n) {
        if is_stable(prog, mask) {
            let atoms: Vec<AtomId> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| prog.atom_of_local(i as u32))
                .collect();
            models.push(atoms);
        }
    }
    Some(models)
}

/// Gelfond–Lifschitz check: `M` is stable iff the least model of the
/// reduct `P^M` equals `M` (atoms as local ids in the bitmask).
fn is_stable(prog: &GroundProgram, mask: u32) -> bool {
    let in_m = |a: u32| mask & (1 << a) != 0;
    // Least model of the reduct by naive iteration (n ≤ 20).
    let mut derived: u32 = 0;
    for &f in prog.facts_local() {
        derived |= 1 << f;
    }
    let mut changed = true;
    while changed {
        changed = false;
        'rules: for r in 0..prog.num_rules() {
            let h = prog.head_local(r);
            if derived & (1 << h) != 0 {
                continue;
            }
            for &b in prog.neg_local(r) {
                if in_m(b) {
                    continue 'rules; // rule deleted by the reduct
                }
            }
            for &b in prog.pos_local(r) {
                if derived & (1 << b) == 0 {
                    continue 'rules;
                }
            }
            derived |= 1 << h;
            changed = true;
        }
    }
    derived == mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wp::{StepMode, WpEngine};
    use wfdl_core::Truth;
    use wfdl_storage::{GroundProgramBuilder, GroundRule};

    fn a(i: usize) -> AtomId {
        AtomId::from_index(i)
    }

    #[test]
    fn positive_program_has_unique_stable_model() {
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![]));
        let p = b.finish();
        let models = stable_models(&p).unwrap();
        assert_eq!(models, vec![vec![a(0), a(1)]]);
    }

    #[test]
    fn even_negation_cycle_has_two_stable_models() {
        // p ← ¬q; q ← ¬p: two stable models {p}, {q}; WFS: both unknown.
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![], vec![a(1)]));
        b.add_rule(GroundRule::new(a(1), vec![], vec![a(0)]));
        let p = b.finish();
        let models = stable_models(&p).unwrap();
        assert_eq!(models.len(), 2);
        let wfs = WpEngine::new(&p).solve(StepMode::Accelerated);
        assert_eq!(wfs.value(a(0)), Truth::Unknown);
        assert_eq!(wfs.value(a(1)), Truth::Unknown);
    }

    #[test]
    fn odd_negation_cycle_has_no_stable_model() {
        // p ← ¬p: no stable model; WFS: p unknown.
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(0), vec![], vec![a(0)]));
        let p = b.finish();
        assert!(stable_models(&p).unwrap().is_empty());
    }

    #[test]
    fn total_wfs_is_the_unique_stable_model() {
        // fact g; p ← g, ¬q. WFS: g,p true, q false (total).
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![a(2)]));
        let p = b.finish();
        let models = stable_models(&p).unwrap();
        assert_eq!(models, vec![vec![a(0), a(1)]]);
        let wfs = WpEngine::new(&p).solve(StepMode::Accelerated);
        assert_eq!(wfs.value(a(1)), Truth::True);
        assert_eq!(wfs.value(a(2)), Truth::False);
    }

    #[test]
    fn refuses_large_programs() {
        let mut b = GroundProgramBuilder::new();
        for i in 0..MAX_ATOMS_FOR_ENUMERATION + 1 {
            b.add_fact(a(i));
        }
        assert!(stable_models(&b.finish()).is_none());
    }
}
