//! Stage traces: a structured, renderable record of how a well-founded
//! model was computed — which literal entered at which stage, and (for the
//! definitional engine) why.
//!
//! The paper's Example 9 is exactly such a trace (`Ŵ_{P,1}`, `Ŵ_{P,2}`, …
//! up to `Ŵ_{P,ω+2}`); [`StageTrace::render`] prints models in that style.

use crate::result::EngineResult;
use wfdl_core::{AtomId, Truth, Universe};

/// One literal's entry into the fixpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Stage at which the literal was decided.
    pub stage: u32,
    /// The atom.
    pub atom: AtomId,
    /// `True` or `False` (never `Unknown`).
    pub value: Truth,
}

/// A per-stage view of an engine run.
#[derive(Clone, Debug, Default)]
pub struct StageTrace {
    entries: Vec<TraceEntry>,
    /// Total number of productive stages.
    pub stages: u32,
}

impl StageTrace {
    /// Builds a trace from an engine result, ordered by (stage, polarity
    /// true-first, atom id).
    pub fn from_result(result: &EngineResult) -> StageTrace {
        let mut entries: Vec<TraceEntry> = result
            .decided_stage
            .iter()
            .map(|(atom, stage)| TraceEntry {
                stage,
                atom,
                value: result.value(atom),
            })
            .collect();
        entries.sort_by_key(|e| (e.stage, e.value != Truth::True, e.atom));
        StageTrace {
            entries,
            stages: result.stages,
        }
    }

    /// All entries in stage order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries of one stage.
    pub fn stage(&self, stage: u32) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.stage == stage)
    }

    /// Literals decided per stage: `(stage, true count, false count)`.
    pub fn histogram(&self) -> Vec<(u32, usize, usize)> {
        let mut out: Vec<(u32, usize, usize)> = Vec::new();
        for e in &self.entries {
            if out.last().map(|l| l.0) != Some(e.stage) {
                out.push((e.stage, 0, 0));
            }
            if let Some(last) = out.last_mut() {
                if e.value.is_true() {
                    last.1 += 1;
                } else {
                    last.2 += 1;
                }
            }
        }
        out
    }

    /// The stage at which the model's last literal settled (equals
    /// [`StageTrace::stages`] for productive runs).
    pub fn settled_stage(&self) -> u32 {
        self.entries.iter().map(|e| e.stage).max().unwrap_or(0)
    }

    /// Renders the trace in the paper's Example 9 style, capped at
    /// `max_per_stage` literals per stage.
    pub fn render(&self, universe: &Universe, max_per_stage: usize) -> String {
        let mut out = String::new();
        let mut current = 0u32;
        let mut shown = 0usize;
        let mut suppressed = 0usize;
        let flush = |out: &mut String, suppressed: &mut usize| {
            if *suppressed > 0 {
                out.push_str(&format!("  … {suppressed} more\n"));
                *suppressed = 0;
            }
        };
        for e in &self.entries {
            if e.stage != current {
                flush(&mut out, &mut suppressed);
                current = e.stage;
                shown = 0;
                out.push_str(&format!("-- stage {current} --\n"));
            }
            if shown >= max_per_stage {
                suppressed += 1;
                continue;
            }
            shown += 1;
            let sign = if e.value.is_true() { "" } else { "¬" };
            out.push_str(&format!("  {sign}{}\n", universe.display_atom(e.atom)));
        }
        flush(&mut out, &mut suppressed);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve, EngineKind, WfsOptions};
    use wfdl_chase::paper::example4;
    use wfdl_core::Universe;

    fn trace_example4(engine: EngineKind) -> (Universe, StageTrace) {
        let mut u = Universe::new();
        let (db, sigma) = example4(&mut u);
        let model = solve(
            &mut u,
            &db,
            &sigma,
            WfsOptions::depth(5).with_engine(engine),
        );
        (u, StageTrace::from_result(&model.result))
    }

    #[test]
    fn trace_is_stage_sorted_and_complete() {
        let (_u, trace) = trace_example4(EngineKind::Forward);
        assert!(!trace.entries().is_empty());
        assert!(trace.entries().windows(2).all(|w| w[0].stage <= w[1].stage));
        assert_eq!(trace.settled_stage(), trace.stages);
    }

    #[test]
    fn histogram_sums_to_entry_count() {
        let (_u, trace) = trace_example4(EngineKind::WpLiteral);
        let total: usize = trace.histogram().iter().map(|(_, t, f)| t + f).sum();
        assert_eq!(total, trace.entries().len());
    }

    #[test]
    fn render_shows_example9_stage1() {
        let (u, trace) = trace_example4(EngineKind::Forward);
        let text = trace.render(&u, 100);
        // Stage 1 contains the R-chain and P(0,0) (Example 9's Ŵ_{P,1}).
        let stage1: Vec<String> = trace
            .stage(1)
            .map(|e| u.display_atom(e.atom).to_string())
            .collect();
        assert!(stage1.iter().any(|s| s == "R(0,0,1)"), "{stage1:?}");
        assert!(stage1.iter().any(|s| s == "P(0,0)"), "{stage1:?}");
        assert!(text.starts_with("-- stage 1 --"), "{text}");
        // Q(1) is refuted at stage 2.
        assert!(text.contains("¬Q(1)"), "{text}");
    }

    #[test]
    fn render_caps_per_stage() {
        let (u, trace) = trace_example4(EngineKind::Forward);
        let text = trace.render(&u, 1);
        assert!(text.contains("more"), "{text}");
    }
}
