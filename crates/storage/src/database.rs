//! Database instances: finite sets of ground, null-free atoms over `∆`.

use wfdl_core::{AtomId, CoreError, FxHashMap, FxHashSet, PredId, Result, Universe};

/// A database `D` for a relational schema: ground atoms whose arguments are
/// data constants (no nulls, no variables), per Section 2.1.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Database {
    facts: Vec<AtomId>,
    set: FxHashSet<AtomId>,
    by_pred: FxHashMap<PredId, Vec<AtomId>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a fact, validating that it is constant-only.
    ///
    /// Returns `Ok(true)` if the fact is new, `Ok(false)` if it was already
    /// present, and an error if any argument is a labelled null.
    pub fn insert(&mut self, universe: &Universe, atom: AtomId) -> Result<bool> {
        if !universe.atom_is_constant_free_of_nulls(atom) {
            return Err(CoreError::NonGroundFact {
                atom: universe.display_atom(atom).to_string(),
            });
        }
        Ok(self.insert_unchecked(universe, atom))
    }

    /// Inserts a fact without the null-freeness check (used by generators
    /// that construct constants directly).
    pub fn insert_unchecked(&mut self, universe: &Universe, atom: AtomId) -> bool {
        if !self.set.insert(atom) {
            return false;
        }
        self.facts.push(atom);
        self.by_pred
            .entry(universe.atoms.pred(atom))
            .or_default()
            .push(atom);
        true
    }

    /// Removes a batch of facts, returning how many were actually present.
    ///
    /// Order of the surviving facts is preserved. One linear pass over the
    /// database per batch — retraction invalidates every derived
    /// consequence anyway, so it is never on a hot path.
    pub fn retract_batch(&mut self, universe: &Universe, atoms: &[AtomId]) -> usize {
        let mut removed = 0usize;
        for &a in atoms {
            if self.set.remove(&a) {
                removed += 1;
            }
        }
        if removed == 0 {
            return 0;
        }
        self.facts.retain(|f| self.set.contains(f));
        for &a in atoms {
            if let Some(row) = self.by_pred.get_mut(&universe.atoms.pred(a)) {
                row.retain(|f| self.set.contains(f));
            }
        }
        removed
    }

    /// True iff the database contains `atom`.
    #[inline]
    pub fn contains(&self, atom: AtomId) -> bool {
        self.set.contains(&atom)
    }

    /// All facts, in insertion order.
    #[inline]
    pub fn facts(&self) -> &[AtomId] {
        &self.facts
    }

    /// Facts with the given predicate.
    pub fn facts_with_pred(&self, pred: PredId) -> &[AtomId] {
        self.by_pred.get(&pred).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True iff the database is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedups() {
        let mut u = Universe::new();
        let p = u.pred("p", 1).unwrap();
        let c = u.constant("c");
        let a = u.atom(p, vec![c]).unwrap();
        let mut db = Database::new();
        assert!(db.insert(&u, a).unwrap());
        assert!(!db.insert(&u, a).unwrap());
        assert_eq!(db.len(), 1);
        assert!(db.contains(a));
    }

    #[test]
    fn rejects_nulls() {
        let mut u = Universe::new();
        let p = u.pred("p", 1).unwrap();
        let f = u.skolem_fn("f", 0).unwrap();
        let null = u.skolem_term(f, vec![]).unwrap();
        let a = u.atom(p, vec![null]).unwrap();
        let mut db = Database::new();
        assert!(matches!(
            db.insert(&u, a),
            Err(CoreError::NonGroundFact { .. })
        ));
    }

    #[test]
    fn retract_batch_removes_and_preserves_order() {
        let mut u = Universe::new();
        let p = u.pred("p", 1).unwrap();
        let q = u.pred("q", 1).unwrap();
        let c = u.constant("c");
        let d = u.constant("d");
        let pc = u.atom(p, vec![c]).unwrap();
        let pd = u.atom(p, vec![d]).unwrap();
        let qc = u.atom(q, vec![c]).unwrap();
        let mut db = Database::new();
        for a in [pc, pd, qc] {
            db.insert(&u, a).unwrap();
        }
        assert_eq!(db.retract_batch(&u, &[pc, qc, pc]), 2, "pc counted once");
        assert_eq!(db.facts(), &[pd]);
        assert_eq!(db.facts_with_pred(p), &[pd]);
        assert!(db.facts_with_pred(q).is_empty());
        assert!(!db.contains(pc));
        assert_eq!(db.retract_batch(&u, &[pc]), 0, "already gone");
    }

    #[test]
    fn per_predicate_listing() {
        let mut u = Universe::new();
        let p = u.pred("p", 1).unwrap();
        let q = u.pred("q", 1).unwrap();
        let c = u.constant("c");
        let d = u.constant("d");
        let pa = u.atom(p, vec![c]).unwrap();
        let pb = u.atom(p, vec![d]).unwrap();
        let qa = u.atom(q, vec![c]).unwrap();
        let mut db = Database::new();
        db.insert(&u, pa).unwrap();
        db.insert(&u, pb).unwrap();
        db.insert(&u, qa).unwrap();
        assert_eq!(db.facts_with_pred(p), &[pa, pb]);
        assert_eq!(db.facts_with_pred(q), &[qa]);
        let r = u.pred("r", 1).unwrap();
        assert!(db.facts_with_pred(r).is_empty());
    }
}
