//! # `wfdl-storage` — databases, ground programs, and indexes
//!
//! Storage substrate for the `wfdatalog` system: database instances
//! ([`Database`]), deduplicated & indexed finite ground normal programs
//! ([`GroundProgram`]) extracted from chase segments, and secondary atom
//! indexes ([`AtomIndex`]) for homomorphism search.

#![warn(missing_docs)]

pub mod database;
pub mod ground;
pub mod index;

pub use database::Database;
pub use ground::{GroundProgram, GroundProgramBuilder, GroundRule, GroundRuleId};
pub use index::AtomIndex;
