//! Secondary indexes over sets of ground atoms, used by the query engine's
//! homomorphism search.

use wfdl_core::{AtomId, FxHashMap, PredId, TermId, Universe};

/// An index over a collection of ground atoms supporting
/// lookup-by-predicate and lookup-by-(predicate, argument position, term).
#[derive(Clone, Debug, Default)]
pub struct AtomIndex {
    by_pred: FxHashMap<PredId, Vec<AtomId>>,
    by_pred_pos_term: FxHashMap<(PredId, u32, TermId), Vec<AtomId>>,
    len: usize,
}

impl AtomIndex {
    /// Builds an index over `atoms`.
    pub fn build(universe: &Universe, atoms: impl IntoIterator<Item = AtomId>) -> Self {
        let mut idx = AtomIndex::default();
        for atom in atoms {
            idx.insert(universe, atom);
        }
        idx
    }

    /// Adds an atom to the index.
    pub fn insert(&mut self, universe: &Universe, atom: AtomId) {
        let node = universe.atoms.node(atom);
        self.by_pred.entry(node.pred).or_default().push(atom);
        for (i, &t) in node.args.iter().enumerate() {
            self.by_pred_pos_term
                .entry((node.pred, i as u32, t))
                .or_default()
                .push(atom);
        }
        self.len += 1;
    }

    /// Atoms with the given predicate.
    pub fn with_pred(&self, pred: PredId) -> &[AtomId] {
        self.by_pred.get(&pred).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Atoms with the given predicate whose `pos`-th argument is `term`.
    pub fn with_pred_pos_term(&self, pred: PredId, pos: u32, term: TermId) -> &[AtomId] {
        self.by_pred_pos_term
            .get(&(pred, pos, term))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The most selective candidate list for a predicate given optional
    /// known argument values: picks the shortest among the per-position
    /// lists and the full predicate list.
    pub fn candidates(
        &self,
        pred: PredId,
        known: impl Iterator<Item = (u32, TermId)>,
    ) -> &[AtomId] {
        let mut best = self.with_pred(pred);
        for (pos, term) in known {
            let list = self.with_pred_pos_term(pred, pos, term);
            if list.len() < best.len() {
                best = list;
            }
        }
        best
    }

    /// Number of indexed atoms.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no atoms are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_pred_and_position() {
        let mut u = Universe::new();
        let e = u.pred("edge", 2).unwrap();
        let n1 = u.constant("n1");
        let n2 = u.constant("n2");
        let n3 = u.constant("n3");
        let e12 = u.atom(e, vec![n1, n2]).unwrap();
        let e13 = u.atom(e, vec![n1, n3]).unwrap();
        let e23 = u.atom(e, vec![n2, n3]).unwrap();
        let idx = AtomIndex::build(&u, [e12, e13, e23]);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.with_pred(e), &[e12, e13, e23]);
        assert_eq!(idx.with_pred_pos_term(e, 0, n1), &[e12, e13]);
        assert_eq!(idx.with_pred_pos_term(e, 1, n3), &[e13, e23]);
        assert!(idx.with_pred_pos_term(e, 1, n1).is_empty());
    }

    #[test]
    fn candidates_picks_most_selective() {
        let mut u = Universe::new();
        let e = u.pred("edge", 2).unwrap();
        let hub = u.constant("hub");
        let mut atoms = Vec::new();
        for i in 0..10 {
            let c = u.constant(&format!("n{i}"));
            atoms.push(u.atom(e, vec![hub, c]).unwrap());
        }
        let spoke = u.constant("n3");
        let idx = AtomIndex::build(&u, atoms.iter().copied());
        // Position 0 = hub matches all 10; position 1 = n3 matches 1.
        let c = idx.candidates(e, [(0, hub), (1, spoke)].into_iter());
        assert_eq!(c.len(), 1);
    }
}
