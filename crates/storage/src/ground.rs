//! Finite ground normal programs — the input to the WFS fixpoint engines.
//!
//! A [`GroundProgram`] is a deduplicated set of ground rule instances plus
//! facts, with occurrence indexes (which rules have a given atom in their
//! head / positive body / negative body). The chase extracts exactly this
//! structure from a depth-bounded segment of the guarded chase forest; the
//! fixpoint engines in `wfdl-wfs` never look at anything else.

use wfdl_core::{AtomId, BitSet, FxHashMap};

/// Index of a rule within a [`GroundProgram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroundRuleId(u32);

impl GroundRuleId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        GroundRuleId(u32::try_from(i).expect("ground rule id overflow"))
    }
}

/// A ground normal rule `β1,…,βn, ¬βn+1,…,¬βn+m → α`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GroundRule {
    /// Head atom `α = H(r)`.
    pub head: AtomId,
    /// Positive body `B⁺(r)`, deduplicated and sorted.
    pub pos: Box<[AtomId]>,
    /// Negative body `B⁻(r)` (stored un-negated), deduplicated and sorted.
    pub neg: Box<[AtomId]>,
}

impl GroundRule {
    /// Creates a rule, normalizing the body atom order for deduplication.
    pub fn new(head: AtomId, mut pos: Vec<AtomId>, mut neg: Vec<AtomId>) -> Self {
        pos.sort_unstable();
        pos.dedup();
        neg.sort_unstable();
        neg.dedup();
        GroundRule {
            head,
            pos: pos.into_boxed_slice(),
            neg: neg.into_boxed_slice(),
        }
    }
}

/// Builder that deduplicates rules and facts.
#[derive(Clone, Debug, Default)]
pub struct GroundProgramBuilder {
    rules: Vec<GroundRule>,
    seen: FxHashMap<GroundRule, GroundRuleId>,
    facts: Vec<AtomId>,
    fact_set: BitSet,
}

impl GroundProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fact (a rule with empty body, kept separately).
    pub fn add_fact(&mut self, atom: AtomId) {
        if self.fact_set.insert(atom.index()) {
            self.facts.push(atom);
        }
    }

    /// Adds a rule instance; duplicates are ignored. Returns its id.
    pub fn add_rule(&mut self, rule: GroundRule) -> GroundRuleId {
        if let Some(&id) = self.seen.get(&rule) {
            return id;
        }
        let id = GroundRuleId::from_index(self.rules.len());
        self.seen.insert(rule.clone(), id);
        self.rules.push(rule);
        id
    }

    /// Number of distinct rules so far.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// Finalizes into an indexed program.
    pub fn finish(self) -> GroundProgram {
        GroundProgram::build(self.rules, self.facts)
    }
}

/// An indexed, deduplicated finite ground normal program.
#[derive(Clone, Debug, Default)]
pub struct GroundProgram {
    rules: Vec<GroundRule>,
    facts: Vec<AtomId>,
    /// All atoms appearing anywhere (facts, heads, bodies), sorted.
    atoms: Vec<AtomId>,
    atom_set: BitSet,
    /// `head_occ[a]` = rules with head `a` (keyed by atom index).
    head_occ: FxHashMap<AtomId, Vec<GroundRuleId>>,
    /// `pos_occ[a]` = rules with `a` in the positive body.
    pos_occ: FxHashMap<AtomId, Vec<GroundRuleId>>,
    /// `neg_occ[a]` = rules with `a` in the negative body.
    neg_occ: FxHashMap<AtomId, Vec<GroundRuleId>>,
}

impl GroundProgram {
    /// Builds the indexes for a set of rules and facts.
    pub fn build(rules: Vec<GroundRule>, facts: Vec<AtomId>) -> Self {
        let mut prog = GroundProgram {
            rules,
            facts,
            ..Default::default()
        };
        for &f in &prog.facts {
            if prog.atom_set.insert(f.index()) {
                prog.atoms.push(f);
            }
        }
        for (i, rule) in prog.rules.iter().enumerate() {
            let id = GroundRuleId::from_index(i);
            prog.head_occ.entry(rule.head).or_default().push(id);
            if prog.atom_set.insert(rule.head.index()) {
                prog.atoms.push(rule.head);
            }
            for &b in rule.pos.iter() {
                prog.pos_occ.entry(b).or_default().push(id);
                if prog.atom_set.insert(b.index()) {
                    prog.atoms.push(b);
                }
            }
            for &b in rule.neg.iter() {
                prog.neg_occ.entry(b).or_default().push(id);
                if prog.atom_set.insert(b.index()) {
                    prog.atoms.push(b);
                }
            }
        }
        prog.atoms.sort_unstable();
        prog
    }

    /// The rules.
    #[inline]
    pub fn rules(&self) -> &[GroundRule] {
        &self.rules
    }

    /// A rule by id.
    #[inline]
    pub fn rule(&self, id: GroundRuleId) -> &GroundRule {
        &self.rules[id.index()]
    }

    /// The facts.
    #[inline]
    pub fn facts(&self) -> &[AtomId] {
        &self.facts
    }

    /// Every atom mentioned by the program, sorted by id.
    #[inline]
    pub fn atoms(&self) -> &[AtomId] {
        &self.atoms
    }

    /// True iff `atom` is mentioned by the program.
    #[inline]
    pub fn mentions(&self, atom: AtomId) -> bool {
        self.atom_set.contains(atom.index())
    }

    /// Rules whose head is `atom`.
    pub fn rules_with_head(&self, atom: AtomId) -> &[GroundRuleId] {
        self.head_occ.get(&atom).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Rules with `atom` in their positive body.
    pub fn rules_with_pos(&self, atom: AtomId) -> &[GroundRuleId] {
        self.pos_occ.get(&atom).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Rules with `atom` in their negative body.
    pub fn rules_with_neg(&self, atom: AtomId) -> &[GroundRuleId] {
        self.neg_occ.get(&atom).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of rules.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// Number of distinct atoms mentioned.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Total number of body literals across all rules (a size measure used
    /// in complexity reporting).
    pub fn num_body_literals(&self) -> usize {
        self.rules.iter().map(|r| r.pos.len() + r.neg.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AtomId {
        AtomId::from_index(i)
    }

    #[test]
    fn builder_dedups_rules_and_facts() {
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_fact(a(0));
        let r1 = b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![a(2)]));
        let r2 = b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![a(2)]));
        assert_eq!(r1, r2);
        assert_eq!(b.num_rules(), 1);
        let p = b.finish();
        assert_eq!(p.facts(), &[a(0)]);
        assert_eq!(p.num_rules(), 1);
    }

    #[test]
    fn body_order_is_canonical() {
        let r1 = GroundRule::new(a(9), vec![a(2), a(1), a(2)], vec![]);
        let r2 = GroundRule::new(a(9), vec![a(1), a(2)], vec![]);
        assert_eq!(r1, r2);
    }

    #[test]
    fn occurrence_indexes() {
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        let r0 = b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![a(3)]));
        let r1 = b.add_rule(GroundRule::new(a(2), vec![a(0), a(1)], vec![]));
        let p = b.finish();
        assert_eq!(p.rules_with_head(a(1)), &[r0]);
        assert_eq!(p.rules_with_pos(a(0)), &[r0, r1]);
        assert_eq!(p.rules_with_neg(a(3)), &[r0]);
        assert!(p.rules_with_head(a(0)).is_empty());
        assert_eq!(p.num_atoms(), 4);
        assert!(p.mentions(a(3)));
        assert!(!p.mentions(a(7)));
        assert_eq!(p.num_body_literals(), 4);
    }
}
