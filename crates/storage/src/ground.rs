//! Finite ground normal programs — the input to the WFS fixpoint engines.
//!
//! A [`GroundProgram`] is a deduplicated set of ground rule instances plus
//! facts, with occurrence indexes (which rules have a given atom in their
//! head / positive body / negative body). The chase extracts exactly this
//! structure from a depth-bounded segment of the guarded chase forest; the
//! fixpoint engines in `wfdl-wfs` never look at anything else.
//!
//! ## Dense local ids and CSR indexes
//!
//! Atoms mentioned by a program are renumbered into a contiguous
//! `0..num_atoms()` range of **local ids** (position in the sorted
//! [`GroundProgram::atoms`] list), and every index the engines touch in
//! their inner loops is stored in **compressed-sparse-row** form: one flat
//! offsets array (`n + 1` entries) plus one flat data array, so a lookup is
//! two array reads and a slice — no hashing, no per-atom allocation. The
//! `AtomId`-keyed accessors ([`GroundProgram::rules_with_head`] & co.)
//! remain for callers that work with universe ids; the `*_local` twins are
//! the hot-path API used by `wfdl-wfs`.

use wfdl_core::{AtomId, BitSet, FxHashMap};

/// Index of a rule within a [`GroundProgram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroundRuleId(u32);

impl GroundRuleId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        GroundRuleId(wfdl_core::dense_u32(i, "ground rule id"))
    }
}

/// A ground normal rule `β1,…,βn, ¬βn+1,…,¬βn+m → α`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GroundRule {
    /// Head atom `α = H(r)`.
    pub head: AtomId,
    /// Positive body `B⁺(r)`, deduplicated and sorted.
    pub pos: Box<[AtomId]>,
    /// Negative body `B⁻(r)` (stored un-negated), deduplicated and sorted.
    pub neg: Box<[AtomId]>,
}

impl GroundRule {
    /// Creates a rule, normalizing the body atom order for deduplication.
    pub fn new(head: AtomId, mut pos: Vec<AtomId>, mut neg: Vec<AtomId>) -> Self {
        pos.sort_unstable();
        pos.dedup();
        neg.sort_unstable();
        neg.dedup();
        GroundRule {
            head,
            pos: pos.into_boxed_slice(),
            neg: neg.into_boxed_slice(),
        }
    }
}

/// Builder that deduplicates rules and facts, accumulating the atom set as
/// it goes so [`GroundProgramBuilder::finish`] indexes in a single pass.
#[derive(Clone, Debug, Default)]
pub struct GroundProgramBuilder {
    rules: Vec<GroundRule>,
    seen: FxHashMap<GroundRule, GroundRuleId>,
    facts: Vec<AtomId>,
    fact_set: BitSet,
    atoms: Vec<AtomId>,
    atom_set: BitSet,
}

impl GroundProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn register_atom(&mut self, atom: AtomId) {
        if self.atom_set.insert(atom.index()) {
            self.atoms.push(atom);
        }
    }

    /// Adds a fact (a rule with empty body, kept separately).
    pub fn add_fact(&mut self, atom: AtomId) {
        if self.fact_set.insert(atom.index()) {
            self.facts.push(atom);
            self.register_atom(atom);
        }
    }

    /// Adds a rule instance; duplicates are ignored. Returns its id.
    pub fn add_rule(&mut self, rule: GroundRule) -> GroundRuleId {
        if let Some(&id) = self.seen.get(&rule) {
            return id;
        }
        let id = GroundRuleId::from_index(self.rules.len());
        self.register_atom(rule.head);
        for i in 0..rule.pos.len() {
            self.register_atom(rule.pos[i]);
        }
        for i in 0..rule.neg.len() {
            self.register_atom(rule.neg[i]);
        }
        self.seen.insert(rule.clone(), id);
        self.rules.push(rule);
        id
    }

    /// Number of distinct rules so far.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// Finalizes into an indexed program. The atom set accumulated during
    /// building is carried forward, so this is one pass over the rules.
    pub fn finish(self) -> GroundProgram {
        GroundProgram::from_parts(self.rules, self.facts, self.atoms)
    }
}

/// An indexed, deduplicated finite ground normal program with dense local
/// atom ids and CSR occurrence indexes.
///
/// Rule structure lives **only** in the flat local-id arrays the fixpoint
/// engines read; the boxed [`GroundRule`] view is materialized on demand
/// by [`GroundProgram::rule`] / [`GroundProgram::rules`] for cold paths
/// (stratified baseline, wcheck cones, tests).
#[derive(Clone, Debug, Default)]
pub struct GroundProgram {
    facts: Vec<AtomId>,
    /// All atoms appearing anywhere (facts, heads, bodies), sorted. The
    /// **local id** of an atom is its position here; `AtomId`-keyed
    /// lookups binary-search this list (hot loops use local ids only).
    atoms: Vec<AtomId>,
    /// Facts as local ids.
    facts_local: Vec<u32>,
    /// Rule heads as local ids, one per rule.
    head_local: Vec<u32>,
    /// Positive bodies as local ids, CSR over rules.
    pos_off: Vec<u32>,
    pos_local: Vec<u32>,
    /// Negative bodies as local ids, CSR over rules.
    neg_off: Vec<u32>,
    neg_local: Vec<u32>,
    /// `head_occ(a)` = rules with head `a`, CSR over local atom ids.
    head_occ_off: Vec<u32>,
    head_occ: Vec<GroundRuleId>,
    /// `pos_occ(a)` = rules with `a` in the positive body.
    pos_occ_off: Vec<u32>,
    pos_occ: Vec<GroundRuleId>,
    /// `neg_occ(a)` = rules with `a` in the negative body.
    neg_occ_off: Vec<u32>,
    neg_occ: Vec<GroundRuleId>,
}

impl GroundProgram {
    /// Builds the indexes for a set of rules and facts, collecting the atom
    /// set first. Prefer [`GroundProgramBuilder`], which accumulates the
    /// atom set while deduplicating and skips this extra pass.
    pub fn build(rules: Vec<GroundRule>, facts: Vec<AtomId>) -> Self {
        let mut atoms = Vec::new();
        let mut atom_set = BitSet::new();
        let register = |atom: AtomId, atoms: &mut Vec<AtomId>, set: &mut BitSet| {
            if set.insert(atom.index()) {
                atoms.push(atom);
            }
        };
        for &f in &facts {
            register(f, &mut atoms, &mut atom_set);
        }
        for rule in &rules {
            register(rule.head, &mut atoms, &mut atom_set);
            for &b in rule.pos.iter() {
                register(b, &mut atoms, &mut atom_set);
            }
            for &b in rule.neg.iter() {
                register(b, &mut atoms, &mut atom_set);
            }
        }
        GroundProgram::from_parts(rules, facts, atoms)
    }

    /// Indexes a program over an explicitly-given atom universe. `atoms`
    /// must contain every atom mentioned by `rules` and `facts` (it may
    /// contain more — extra atoms simply head no rules, so the engines
    /// treat them as unsupported). Used by `wfdl-wfs` to assemble
    /// per-component subprograms whose universe includes atoms whose rules
    /// were all eliminated by substitution.
    pub fn build_with_atom_universe(
        rules: Vec<GroundRule>,
        facts: Vec<AtomId>,
        atoms: Vec<AtomId>,
    ) -> Self {
        GroundProgram::from_parts(rules, facts, atoms)
    }

    /// Indexes a program whose atom set is already collected. Cost scales
    /// with the program itself (`O(size · log n)`), never with the size of
    /// the surrounding atom universe — the modular engine builds one
    /// throwaway subprogram per recursive component.
    fn from_parts(rules: Vec<GroundRule>, facts: Vec<AtomId>, mut atoms: Vec<AtomId>) -> Self {
        atoms.sort_unstable();
        atoms.dedup();
        // Callers pass an atom list collected from these same rules and
        // facts, so the search cannot miss.
        #[allow(clippy::expect_used)]
        let local =
            |a: AtomId| -> u32 { atoms.binary_search(&a).expect("atom in universe") as u32 };

        let facts_local: Vec<u32> = facts.iter().map(|&f| local(f)).collect();

        // Rule structure in local ids (CSR over rules).
        let num_rules = rules.len();
        let mut head_local = Vec::with_capacity(num_rules);
        let mut pos_off = Vec::with_capacity(num_rules + 1);
        let mut neg_off = Vec::with_capacity(num_rules + 1);
        let mut pos_local = Vec::new();
        let mut neg_local = Vec::new();
        pos_off.push(0);
        neg_off.push(0);
        for rule in &rules {
            head_local.push(local(rule.head));
            pos_local.extend(rule.pos.iter().map(|&b| local(b)));
            neg_local.extend(rule.neg.iter().map(|&b| local(b)));
            pos_off.push(pos_local.len() as u32);
            neg_off.push(neg_local.len() as u32);
        }

        GroundProgram::finish_with_locals(
            facts,
            atoms,
            facts_local,
            head_local,
            pos_off,
            pos_local,
            neg_off,
            neg_local,
        )
    }

    /// Constructs a program **directly from dense local-id arrays**, the
    /// hash-free handoff used by `wfdl-chase` when translating a saturated
    /// segment: the caller already knows every atom's local id, so indexing
    /// is pure counting-sort array work — no hash probe and no binary
    /// search per atom occurrence anywhere on this path.
    ///
    /// Contract (checked by `debug_assert`s): `atoms` is sorted and
    /// deduplicated; every local id is `< atoms.len()`; `pos_off`/`neg_off`
    /// are CSR offset arrays over `head_local.len()` rules; per-rule body
    /// slices are sorted and deduplicated (the [`GroundRule`] normal form).
    #[allow(clippy::too_many_arguments)]
    pub fn from_dense_parts(
        atoms: Vec<AtomId>,
        facts: Vec<AtomId>,
        facts_local: Vec<u32>,
        head_local: Vec<u32>,
        pos_off: Vec<u32>,
        pos_local: Vec<u32>,
        neg_off: Vec<u32>,
        neg_local: Vec<u32>,
    ) -> Self {
        debug_assert!(atoms.windows(2).all(|w| w[0] < w[1]), "atoms sorted+dedup");
        debug_assert_eq!(pos_off.len(), head_local.len() + 1);
        debug_assert_eq!(neg_off.len(), head_local.len() + 1);
        #[cfg(debug_assertions)]
        for r in 0..head_local.len() {
            debug_assert!((head_local[r] as usize) < atoms.len(), "local id in range");
            let pos_slice = &pos_local[pos_off[r] as usize..pos_off[r + 1] as usize];
            let neg_slice = &neg_local[neg_off[r] as usize..neg_off[r + 1] as usize];
            debug_assert!(pos_slice.iter().all(|&l| (l as usize) < atoms.len()));
            debug_assert!(neg_slice.iter().all(|&l| (l as usize) < atoms.len()));
            debug_assert!(pos_slice.windows(2).all(|w| w[0] < w[1]));
            debug_assert!(neg_slice.windows(2).all(|w| w[0] < w[1]));
        }
        GroundProgram::finish_with_locals(
            facts,
            atoms,
            facts_local,
            head_local,
            pos_off,
            pos_local,
            neg_off,
            neg_local,
        )
    }

    /// Extends this program with newly-discovered atoms, facts and rule
    /// instances — the **incremental grounding** path used after a resumed
    /// chase, where re-translating the untouched bulk of the program would
    /// dominate the whole re-solve.
    ///
    /// Contract (the chase upholds it): `new_atoms` is sorted, deduplicated
    /// and disjoint from [`GroundProgram::atoms`]; `new_facts` are the
    /// facts appended after this program's facts, in insertion order;
    /// `new_rules` are the candidate instances discovered after this
    /// program's rules, in discovery order, mentioning only known atoms.
    /// Duplicate candidates (of existing rules or of each other) are
    /// dropped, preserving the first-occurrence semantics of a from-scratch
    /// build — the result is **identical** to re-grounding the grown
    /// segment from scratch.
    ///
    /// Cost: one merge pass over the atom list, one remap pass over the
    /// existing rule arrays (plain array adds — no sorting, no hashing, no
    /// per-rule boxing), and per-candidate work for the new rules only.
    pub fn extend_with(
        &self,
        new_atoms: &[AtomId],
        new_facts: &[AtomId],
        new_rules: &[GroundRule],
    ) -> GroundProgram {
        debug_assert!(new_atoms.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(new_atoms.iter().all(|a| !self.mentions(*a)));
        let old_n = self.atoms.len();

        // Merge the sorted atom lists; `shift[l]` counts the new atoms
        // inserted before old local `l`, so remapping is one add.
        let mut atoms = Vec::with_capacity(old_n + new_atoms.len());
        let mut shift = Vec::with_capacity(old_n);
        {
            let (mut i, mut j) = (0usize, 0usize);
            while i < old_n || j < new_atoms.len() {
                if j >= new_atoms.len() || (i < old_n && self.atoms[i] < new_atoms[j]) {
                    shift.push(j as u32);
                    atoms.push(self.atoms[i]);
                    i += 1;
                } else {
                    atoms.push(new_atoms[j]);
                    j += 1;
                }
            }
        }
        let remap = |l: u32| l + shift[l as usize];
        // `atoms` was just rebuilt as the union of old and delta atom
        // sets, so every mentioned atom is present.
        #[allow(clippy::expect_used)]
        let local =
            |a: AtomId| -> u32 { atoms.binary_search(&a).expect("atom is mentioned") as u32 };

        // Existing rule arrays, remapped in place-order (offsets and rule
        // order unchanged; bodies stay sorted because the remap is
        // monotone).
        let num_old_rules = self.head_local.len();
        let mut head_local: Vec<u32> = self.head_local.iter().map(|&l| remap(l)).collect();
        let mut pos_off = self.pos_off.clone();
        let mut neg_off = self.neg_off.clone();
        let mut pos_local: Vec<u32> = self.pos_local.iter().map(|&l| remap(l)).collect();
        let mut neg_local: Vec<u32> = self.neg_local.iter().map(|&l| remap(l)).collect();
        head_local.reserve(new_rules.len());

        // Append the new rules, dropping duplicates. A candidate can only
        // duplicate a rule with the same head, so the existing per-head
        // occurrence row (remapped on the fly) plus a scan of the newly
        // kept rules with that head bounds the comparison work.
        let mut scratch_pos: Vec<u32> = Vec::new();
        let mut scratch_neg: Vec<u32> = Vec::new();
        'candidates: for rule in new_rules {
            let h = local(rule.head);
            scratch_pos.clear();
            scratch_pos.extend(rule.pos.iter().map(|&a| local(a)));
            scratch_neg.clear();
            scratch_neg.extend(rule.neg.iter().map(|&a| local(a)));
            // vs. existing rules with this head (old ids still valid —
            // old heads keep their rule indexes).
            if let Some(old_h) = self.atoms.binary_search(&rule.head).ok().map(|l| l as u32) {
                for &rid in self.rules_with_head_local(old_h) {
                    let r = rid.index();
                    let pos =
                        &self.pos_local[self.pos_off[r] as usize..self.pos_off[r + 1] as usize];
                    let neg =
                        &self.neg_local[self.neg_off[r] as usize..self.neg_off[r + 1] as usize];
                    if pos.len() == scratch_pos.len()
                        && neg.len() == scratch_neg.len()
                        && pos.iter().zip(&scratch_pos).all(|(&l, &n)| remap(l) == n)
                        && neg.iter().zip(&scratch_neg).all(|(&l, &n)| remap(l) == n)
                    {
                        continue 'candidates;
                    }
                }
            }
            // vs. rules appended earlier in this call.
            for r in num_old_rules..head_local.len() {
                if head_local[r] != h {
                    continue;
                }
                let pos = &pos_local[pos_off[r] as usize..pos_off[r + 1] as usize];
                let neg = &neg_local[neg_off[r] as usize..neg_off[r + 1] as usize];
                if pos == scratch_pos.as_slice() && neg == scratch_neg.as_slice() {
                    continue 'candidates;
                }
            }
            head_local.push(h);
            pos_local.extend_from_slice(&scratch_pos);
            pos_off.push(pos_local.len() as u32);
            neg_local.extend_from_slice(&scratch_neg);
            neg_off.push(neg_local.len() as u32);
        }

        let mut facts = self.facts.clone();
        facts.extend_from_slice(new_facts);
        let mut facts_local: Vec<u32> = self.facts_local.iter().map(|&l| remap(l)).collect();
        facts_local.extend(new_facts.iter().map(|&f| local(f)));

        GroundProgram::finish_with_locals(
            facts,
            atoms,
            facts_local,
            head_local,
            pos_off,
            pos_local,
            neg_off,
            neg_local,
        )
    }

    /// Shared tail of all constructors: builds the occurrence CSRs from
    /// ready-made local-id rule arrays by counting sort.
    #[allow(clippy::too_many_arguments)]
    fn finish_with_locals(
        facts: Vec<AtomId>,
        atoms: Vec<AtomId>,
        facts_local: Vec<u32>,
        head_local: Vec<u32>,
        pos_off: Vec<u32>,
        pos_local: Vec<u32>,
        neg_off: Vec<u32>,
        neg_local: Vec<u32>,
    ) -> Self {
        let n = atoms.len();
        let num_rules = head_local.len();

        // Occurrence indexes (CSR over local atom ids): count, prefix-sum,
        // fill. The fill preserves rule order within each atom's row.
        let mut head_counts = vec![0u32; n];
        let mut pos_counts = vec![0u32; n];
        let mut neg_counts = vec![0u32; n];
        for r in 0..num_rules {
            head_counts[head_local[r] as usize] += 1;
            for &b in &pos_local[pos_off[r] as usize..pos_off[r + 1] as usize] {
                pos_counts[b as usize] += 1;
            }
            for &b in &neg_local[neg_off[r] as usize..neg_off[r + 1] as usize] {
                neg_counts[b as usize] += 1;
            }
        }
        let prefix_sum = |counts: &[u32]| -> Vec<u32> {
            let mut off = Vec::with_capacity(counts.len() + 1);
            let mut acc = 0u32;
            off.push(0);
            for &c in counts {
                acc += c;
                off.push(acc);
            }
            off
        };
        let head_occ_off = prefix_sum(&head_counts);
        let pos_occ_off = prefix_sum(&pos_counts);
        let neg_occ_off = prefix_sum(&neg_counts);
        let zero = GroundRuleId::from_index(0);
        let mut head_occ = vec![zero; head_occ_off[n] as usize];
        let mut pos_occ = vec![zero; pos_occ_off[n] as usize];
        let mut neg_occ = vec![zero; neg_occ_off[n] as usize];
        let mut head_fill: Vec<u32> = head_occ_off[..n].to_vec();
        let mut pos_fill: Vec<u32> = pos_occ_off[..n].to_vec();
        let mut neg_fill: Vec<u32> = neg_occ_off[..n].to_vec();
        for r in 0..num_rules {
            let id = GroundRuleId::from_index(r);
            let h = head_local[r] as usize;
            head_occ[head_fill[h] as usize] = id;
            head_fill[h] += 1;
            for &b in &pos_local[pos_off[r] as usize..pos_off[r + 1] as usize] {
                pos_occ[pos_fill[b as usize] as usize] = id;
                pos_fill[b as usize] += 1;
            }
            for &b in &neg_local[neg_off[r] as usize..neg_off[r + 1] as usize] {
                neg_occ[neg_fill[b as usize] as usize] = id;
                neg_fill[b as usize] += 1;
            }
        }

        let mut prog = GroundProgram {
            facts,
            atoms,
            facts_local,
            head_local,
            pos_off,
            pos_local,
            neg_off,
            neg_local,
            head_occ_off,
            head_occ,
            pos_occ_off,
            pos_occ,
            neg_occ_off,
            neg_occ,
        };
        prog.shrink_to_fit();
        prog
    }

    /// Releases over-allocated capacity on every index array.
    fn shrink_to_fit(&mut self) {
        self.facts.shrink_to_fit();
        self.atoms.shrink_to_fit();
        self.facts_local.shrink_to_fit();
        self.head_local.shrink_to_fit();
        self.pos_off.shrink_to_fit();
        self.pos_local.shrink_to_fit();
        self.neg_off.shrink_to_fit();
        self.neg_local.shrink_to_fit();
        self.head_occ_off.shrink_to_fit();
        self.head_occ.shrink_to_fit();
        self.pos_occ_off.shrink_to_fit();
        self.pos_occ.shrink_to_fit();
        self.neg_occ_off.shrink_to_fit();
        self.neg_occ.shrink_to_fit();
    }

    /// Iterates the rules as materialized [`GroundRule`]s (allocates two
    /// boxes per rule; cold-path convenience — hot loops read the local-id
    /// CSR arrays directly).
    pub fn rules(&self) -> impl Iterator<Item = GroundRule> + '_ {
        (0..self.num_rules()).map(|r| self.rule(GroundRuleId::from_index(r)))
    }

    /// Materializes a rule by id (allocates; cold-path convenience).
    pub fn rule(&self, id: GroundRuleId) -> GroundRule {
        let r = id.index();
        let atom_of = |l: &u32| self.atoms[*l as usize];
        GroundRule {
            head: atom_of(&self.head_local[r]),
            pos: self.pos_local[self.pos_off[r] as usize..self.pos_off[r + 1] as usize]
                .iter()
                .map(atom_of)
                .collect(),
            neg: self.neg_local[self.neg_off[r] as usize..self.neg_off[r + 1] as usize]
                .iter()
                .map(atom_of)
                .collect(),
        }
    }

    /// The facts.
    #[inline]
    pub fn facts(&self) -> &[AtomId] {
        &self.facts
    }

    /// Every atom mentioned by the program, sorted by id. An atom's
    /// **local id** is its position in this slice.
    #[inline]
    pub fn atoms(&self) -> &[AtomId] {
        &self.atoms
    }

    /// True iff `atom` is mentioned by the program.
    #[inline]
    pub fn mentions(&self, atom: AtomId) -> bool {
        self.atoms.binary_search(&atom).is_ok()
    }

    /// The dense local id of `atom`, if mentioned (binary search; hot
    /// loops work in local ids and never call this).
    #[inline]
    pub fn local_id(&self, atom: AtomId) -> Option<u32> {
        self.atoms.binary_search(&atom).ok().map(|i| i as u32)
    }

    /// The atom with local id `local`.
    #[inline]
    pub fn atom_of_local(&self, local: u32) -> AtomId {
        self.atoms[local as usize]
    }

    /// Facts as local ids.
    #[inline]
    pub fn facts_local(&self) -> &[u32] {
        &self.facts_local
    }

    /// The head of rule `r` (by dense rule index) as a local id.
    #[inline]
    pub fn head_local(&self, r: usize) -> u32 {
        self.head_local[r]
    }

    /// The positive body of rule `r` as local ids.
    #[inline]
    pub fn pos_local(&self, r: usize) -> &[u32] {
        &self.pos_local[self.pos_off[r] as usize..self.pos_off[r + 1] as usize]
    }

    /// The negative body of rule `r` as local ids.
    #[inline]
    pub fn neg_local(&self, r: usize) -> &[u32] {
        &self.neg_local[self.neg_off[r] as usize..self.neg_off[r + 1] as usize]
    }

    /// Rules whose head is `atom`.
    pub fn rules_with_head(&self, atom: AtomId) -> &[GroundRuleId] {
        match self.local_id(atom) {
            Some(l) => self.rules_with_head_local(l),
            None => &[],
        }
    }

    /// Rules with `atom` in their positive body.
    pub fn rules_with_pos(&self, atom: AtomId) -> &[GroundRuleId] {
        match self.local_id(atom) {
            Some(l) => self.rules_with_pos_local(l),
            None => &[],
        }
    }

    /// Rules with `atom` in their negative body.
    pub fn rules_with_neg(&self, atom: AtomId) -> &[GroundRuleId] {
        match self.local_id(atom) {
            Some(l) => self.rules_with_neg_local(l),
            None => &[],
        }
    }

    /// Rules whose head has local id `local`.
    #[inline]
    pub fn rules_with_head_local(&self, local: u32) -> &[GroundRuleId] {
        let a = local as usize;
        &self.head_occ[self.head_occ_off[a] as usize..self.head_occ_off[a + 1] as usize]
    }

    /// Rules with local atom `local` in their positive body.
    #[inline]
    pub fn rules_with_pos_local(&self, local: u32) -> &[GroundRuleId] {
        let a = local as usize;
        &self.pos_occ[self.pos_occ_off[a] as usize..self.pos_occ_off[a + 1] as usize]
    }

    /// Rules with local atom `local` in their negative body.
    #[inline]
    pub fn rules_with_neg_local(&self, local: u32) -> &[GroundRuleId] {
        let a = local as usize;
        &self.neg_occ[self.neg_occ_off[a] as usize..self.neg_occ_off[a + 1] as usize]
    }

    /// Number of rules.
    pub fn num_rules(&self) -> usize {
        self.head_local.len()
    }

    /// Number of distinct atoms mentioned.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Total number of body literals across all rules (a size measure used
    /// in complexity reporting).
    pub fn num_body_literals(&self) -> usize {
        self.pos_local.len() + self.neg_local.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AtomId {
        AtomId::from_index(i)
    }

    #[test]
    fn builder_dedups_rules_and_facts() {
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        b.add_fact(a(0));
        let r1 = b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![a(2)]));
        let r2 = b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![a(2)]));
        assert_eq!(r1, r2);
        assert_eq!(b.num_rules(), 1);
        let p = b.finish();
        assert_eq!(p.facts(), &[a(0)]);
        assert_eq!(p.num_rules(), 1);
    }

    #[test]
    fn body_order_is_canonical() {
        let r1 = GroundRule::new(a(9), vec![a(2), a(1), a(2)], vec![]);
        let r2 = GroundRule::new(a(9), vec![a(1), a(2)], vec![]);
        assert_eq!(r1, r2);
    }

    #[test]
    fn occurrence_indexes() {
        let mut b = GroundProgramBuilder::new();
        b.add_fact(a(0));
        let r0 = b.add_rule(GroundRule::new(a(1), vec![a(0)], vec![a(3)]));
        let r1 = b.add_rule(GroundRule::new(a(2), vec![a(0), a(1)], vec![]));
        let p = b.finish();
        assert_eq!(p.rules_with_head(a(1)), &[r0]);
        assert_eq!(p.rules_with_pos(a(0)), &[r0, r1]);
        assert_eq!(p.rules_with_neg(a(3)), &[r0]);
        assert!(p.rules_with_head(a(0)).is_empty());
        assert_eq!(p.num_atoms(), 4);
        assert!(p.mentions(a(3)));
        assert!(!p.mentions(a(7)));
        assert_eq!(p.num_body_literals(), 4);
    }

    #[test]
    fn build_and_builder_produce_identical_indexes() {
        let rules = vec![
            GroundRule::new(a(5), vec![a(1), a(3)], vec![a(2)]),
            GroundRule::new(a(3), vec![a(1)], vec![]),
            GroundRule::new(a(5), vec![a(3)], vec![a(5)]),
        ];
        let facts = vec![a(1), a(9)];
        let direct = GroundProgram::build(rules.clone(), facts.clone());
        let mut b = GroundProgramBuilder::new();
        for &f in &facts {
            b.add_fact(f);
        }
        for r in &rules {
            b.add_rule(r.clone());
        }
        let built = b.finish();
        assert_eq!(direct.atoms(), built.atoms());
        for &atom in direct.atoms() {
            assert_eq!(direct.local_id(atom), built.local_id(atom));
            assert_eq!(direct.rules_with_head(atom), built.rules_with_head(atom));
            assert_eq!(direct.rules_with_pos(atom), built.rules_with_pos(atom));
            assert_eq!(direct.rules_with_neg(atom), built.rules_with_neg(atom));
        }
    }

    #[test]
    fn local_ids_follow_sorted_atom_order() {
        let mut b = GroundProgramBuilder::new();
        b.add_rule(GroundRule::new(a(20), vec![a(10)], vec![a(30)]));
        b.add_fact(a(40));
        let p = b.finish();
        assert_eq!(p.atoms(), &[a(10), a(20), a(30), a(40)]);
        for (i, &atom) in p.atoms().iter().enumerate() {
            assert_eq!(p.local_id(atom), Some(i as u32));
            assert_eq!(p.atom_of_local(i as u32), atom);
        }
        assert_eq!(p.local_id(a(15)), None);
        assert_eq!(p.local_id(a(1000)), None);
        assert_eq!(p.facts_local(), &[3]);
        assert_eq!(p.head_local(0), 1);
        assert_eq!(p.pos_local(0), &[0]);
        assert_eq!(p.neg_local(0), &[2]);
    }

    #[test]
    fn csr_rows_cover_multi_occurrence_bodies() {
        // a(0) occurs positively in two rules; a(1) negatively in two.
        let mut b = GroundProgramBuilder::new();
        let r0 = b.add_rule(GroundRule::new(a(2), vec![a(0)], vec![a(1)]));
        let r1 = b.add_rule(GroundRule::new(a(3), vec![a(0), a(2)], vec![a(1)]));
        let p = b.finish();
        assert_eq!(p.rules_with_pos(a(0)), &[r0, r1]);
        assert_eq!(p.rules_with_neg(a(1)), &[r0, r1]);
        assert_eq!(p.rules_with_pos(a(2)), &[r1]);
        assert!(p.rules_with_neg(a(3)).is_empty());
    }

    #[test]
    fn empty_program_has_empty_indexes() {
        let p = GroundProgramBuilder::new().finish();
        assert_eq!(p.num_atoms(), 0);
        assert_eq!(p.num_rules(), 0);
        assert!(p.facts().is_empty());
        assert!(p.rules_with_head(a(0)).is_empty());
    }
}
