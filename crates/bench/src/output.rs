//! Shared emission of the machine-readable `BENCH_*.json` artifacts.

use std::path::{Path, PathBuf};

/// Where the repository root is relative to this crate (`crates/bench`).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Writes a bench's machine-readable JSON artifact.
///
/// * With `WFDL_BENCH_JSON` set, writes exactly there — the explicit
///   override used by tooling.
/// * Otherwise writes `default_name` at the **repository root**, the one
///   canonical location: the perf trajectory of every `BENCH_*.json` is
///   trackable from the top level, and there is no second copy under
///   `crates/bench/` to drift out of sync.
///
/// Write failures are reported on stderr but never panic: a read-only
/// checkout must not turn a measurement run into a crash.
pub fn write_bench_json(default_name: &str, json: &str) {
    let path = match std::env::var("WFDL_BENCH_JSON") {
        Ok(path) => PathBuf::from(path),
        Err(_) => repo_root().join(default_name),
    };
    match std::fs::write(&path, json) {
        Ok(()) => println!("bench: wrote {}", path.display()),
        Err(e) => eprintln!("bench: cannot write {}: {e}", path.display()),
    }
}
