//! Regenerates every table and figure of the paper's evaluation
//! (experiment index E1–E10 in DESIGN.md).
//!
//! ```text
//! cargo run --release -p wfdl-bench --bin experiments -- --all
//! cargo run --release -p wfdl-bench --bin experiments -- --e1 --e2
//! ```

use wfdl_bench::experiments as ex;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "--all");
    let want = |flag: &str| all || args.iter().any(|a| a == flag);

    println!(
        "wfdatalog experiments — reproduction of Hernich, Kupke, Lukasiewicz,\n\
         Gottlob: \"Well-Founded Semantics for Extended Datalog and Ontological\n\
         Reasoning\" (PODS 2013)\n"
    );

    if want("--e1") {
        ex::e1_chase_forest_figure();
    }
    if want("--e2") {
        ex::e2_transfinite_stages();
    }
    if want("--e3") {
        ex::e3_data_complexity();
    }
    if want("--e4") {
        ex::e4_combined_complexity();
    }
    if want("--e5") {
        ex::e5_nbcq_answering();
    }
    if want("--e6") {
        ex::e6_dllite_employment();
    }
    if want("--e7") {
        ex::e7_engine_ablation();
    }
    if want("--e8") {
        ex::e8_stratified_vs_wfs();
    }
    if want("--e9") {
        ex::e9_winmove_scaling();
    }
    if want("--e10") {
        ex::e10_wcheck();
    }
    if want("--e11") {
        ex::e11_type_census();
    }
    ex::smoke_three_valued_query();
    println!("done.");
}
