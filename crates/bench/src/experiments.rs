//! The experiment implementations (E1–E10 of DESIGN.md): each prints the
//! regenerated table/figure next to the paper's expected shape.

use crate::timing::{median_time, Series};
use wfdl_chase::{paper, ChaseBudget, ChaseSegment, ExplicitForest};
use wfdl_core::{Truth, Universe};
use wfdl_gen::{
    chain_database, employment_ontology, example4_sigma, random_database,
    random_stratified_program, winmove_database, winmove_sigma, EmploymentConfig, RandomConfig,
    RandomDbConfig, WinMoveConfig,
};
use wfdl_ontology::translate;
use wfdl_query::{holds3, Nbcq, QTerm, QVar, QueryAtom};
use wfdl_wfs::{
    perfect_model, solve, solver::solve_no_una, stratify, wcheck, EngineKind, ForwardEngine,
    WfsOptions,
};

/// E1 — the Example 6 figure: `F⁺(P)` up to depth 3.
pub fn e1_chase_forest_figure() {
    println!("== E1: Example 6 figure — guarded chase forest F+(P), depth ≤ 3 ==");
    let mut u = Universe::new();
    let (db, sigma) = paper::example4(&mut u);
    let seg = ChaseSegment::build(&mut u, &db, &sigma, ChaseBudget::depth(3));
    let forest = ExplicitForest::unfold(&seg, 3, 100_000);
    print!("{}", forest.render(&u));
    println!(
        "nodes: {} (paper figure: 17 at depth ≤ 3; 13 distinct atoms)",
        forest.len()
    );
    println!();
}

/// E2 — Example 9: the transfinite-iteration shadow. The stage at which
/// `T(0)` enters `lfp(Ŵ_P)` grows with segment depth (ω+2 in the limit).
pub fn e2_transfinite_stages() {
    println!("== E2: Example 9 — Ŵ_P stage arithmetic on growing segments ==");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>10}",
        "depth", "atoms", "stages", "stage(T(0))", "T(0)"
    );
    for depth in [4u32, 6, 8, 10, 12, 16] {
        let mut u = Universe::new();
        let (db, sigma) = paper::example4(&mut u);
        let seg = ChaseSegment::build(&mut u, &db, &sigma, ChaseBudget::depth(depth));
        let engine = ForwardEngine::new(&seg);
        let res = engine.solve();
        let t = u.lookup_pred("T").unwrap();
        let zero = u.lookup_constant("0").unwrap();
        let t0 = u.atoms.lookup(t, &[zero]).unwrap();
        println!(
            "{:>6} {:>10} {:>12} {:>12} {:>10}",
            depth,
            seg.atoms().len(),
            res.stages,
            res.stage_of(t0).unwrap(),
            res.value(t0).to_string()
        );
    }
    println!("paper: WFS(P) = Ŵ_(P,ω+2); finite segments enter T(0) ever later.\n");
}

/// E3 — Theorem 13 data complexity: fixed Σ, growing `D`; expected
/// polynomial (near-linear) runtime.
pub fn e3_data_complexity() {
    println!("== E3: Theorem 13 — data complexity (fixed Σ, |D| grows) ==");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "|D|", "atoms", "rules", "time"
    );
    let mut series = Series::default();
    for k in [4usize, 8, 16, 32, 64, 128, 256] {
        let mut u = Universe::new();
        let sigma = example4_sigma(&mut u);
        let db = chain_database(&mut u, k);
        let model = solve(&mut u, &db, &sigma, WfsOptions::depth(6)); // warm-up
        let t = median_time(3, || solve(&mut u, &db, &sigma, WfsOptions::depth(6)));
        println!(
            "{:>10} {:>12} {:>12} {:>11.2?}",
            db.len(),
            model.segment.atoms().len(),
            model.ground.num_rules(),
            t
        );
        series.push(db.len() as f64, t.as_secs_f64());
    }
    println!(
        "log-log slope: {:.2}  (paper: PTIME in data complexity — polynomial, \
         here ≈ linear)\n",
        series.loglog_slope()
    );
}

/// E4 — Theorem 13 combined complexity: the chase's branching factor and
/// the type space grow with the maximum arity `w`. The workload has one
/// `w`-ary predicate and one existential rule per argument position, so a
/// depth-`d` segment holds on the order of `w^d` atoms; next to the
/// measured cost we print the paper's formal bound `δ` (doubly exponential
/// in `w`, quickly overflowing u128).
pub fn e4_combined_complexity() {
    use wfdl_core::{Program, RTerm, RuleAtom, Tgd, Var};
    println!("== E4: Theorem 13 — combined complexity (arity w grows) ==");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>24}",
        "w", "atoms", "rules", "time", "paper δ (|R|=3, w)"
    );
    let mut series = Series::default();
    for w in [1usize, 2, 3, 4, 5] {
        let mut u = Universe::new();
        let p = u.pred("p", w).unwrap();
        let good = u.pred("good", 1).unwrap();
        let bad = u.pred("bad", 1).unwrap();
        let mut prog = Program::new();
        let guard_args: Vec<RTerm> = (0..w as u32).map(|i| RTerm::Var(Var::new(i))).collect();
        // One existential-refresh rule per argument position: the chase
        // branches w ways below every p-atom.
        for pos in 0..w {
            let mut head_args = guard_args.clone();
            head_args[pos] = RTerm::Var(Var::new(w as u32));
            prog.push(
                Tgd::new(
                    &u,
                    vec![RuleAtom::new(p, guard_args.clone())],
                    vec![],
                    vec![RuleAtom::new(p, head_args)],
                )
                .unwrap(),
            );
        }
        // A negation pair on the first argument keeps the WFS machinery hot.
        let x0 = vec![RTerm::Var(Var::new(0))];
        prog.push(
            Tgd::new(
                &u,
                vec![RuleAtom::new(p, guard_args.clone())],
                vec![RuleAtom::new(good, x0.clone())],
                vec![RuleAtom::new(bad, x0.clone())],
            )
            .unwrap(),
        );
        prog.push(
            Tgd::new(
                &u,
                vec![RuleAtom::new(p, guard_args.clone())],
                vec![RuleAtom::new(bad, x0.clone())],
                vec![RuleAtom::new(good, x0)],
            )
            .unwrap(),
        );
        let sigma = prog.skolemize(&mut u).unwrap();
        let c = u.constant("c");
        let seed = u.atom(p, vec![c; w]).unwrap();
        let mut db = wfdl_storage::Database::new();
        db.insert(&u, seed).unwrap();
        let model = solve(&mut u, &db, &sigma, WfsOptions::depth(4)); // warm-up
        let t = median_time(3, || solve(&mut u, &db, &sigma, WfsOptions::depth(4)));
        let delta = wfdl_chase::paper_delta(wfdl_core::SchemaStats {
            num_preds: 3,
            max_arity: w,
        });
        let delta_str = match delta {
            Some(d) => format!("{d:.3e}"),
            None => "> u128 (overflow)".to_string(),
        };
        println!(
            "{:>6} {:>10} {:>12} {:>11.2?} {:>24}",
            w,
            model.segment.atoms().len(),
            model.ground.num_rules(),
            t,
            delta_str
        );
        series.push(w as f64, t.as_secs_f64());
    }
    println!(
        "log-log slope vs w: {:.2} — superlinear growth at fixed depth, while\n\
         the formal bound δ is doubly exponential in w (decidability-only).\n",
        series.loglog_slope()
    );
}

/// E5 — Theorem 14: NBCQ answering, scaling database size and query size.
pub fn e5_nbcq_answering() {
    println!("== E5: Theorem 14 — NBCQ answering ==");
    println!("-- fixed query (n = 2 literals), growing |D| --");
    println!("{:>10} {:>12}", "|D|", "time");
    let mut series = Series::default();
    for k in [8usize, 16, 32, 64, 128, 256] {
        let mut u = Universe::new();
        let sigma = example4_sigma(&mut u);
        let db = chain_database(&mut u, k);
        let model = solve(&mut u, &db, &sigma, WfsOptions::depth(6));
        // ∃X,Y P(X,Y) ∧ ¬S(X)
        let p = u.lookup_pred("P").unwrap();
        let s = u.lookup_pred("S").unwrap();
        let q = Nbcq::boolean(
            &u,
            vec![QueryAtom::new(
                p,
                vec![QTerm::Var(QVar::new(0)), QTerm::Var(QVar::new(1))],
            )],
            vec![QueryAtom::new(s, vec![QTerm::Var(QVar::new(0))])],
        )
        .unwrap();
        let t = median_time(5, || wfdl_query::answers(&u, &model, &q));
        println!("{:>10} {:>11.2?}", db.len(), t);
        series.push(db.len() as f64, t.as_secs_f64());
    }
    println!(
        "log-log slope: {:.2} (paper: PTIME data complexity)",
        series.loglog_slope()
    );

    println!("-- fixed |D|, growing query size n --");
    println!("{:>6} {:>12} {:>10}", "n", "time", "holds");
    let mut u = Universe::new();
    let sigma = example4_sigma(&mut u);
    let db = chain_database(&mut u, 32);
    let model = solve(&mut u, &db, &sigma, WfsOptions::depth(6));
    let r = u.lookup_pred("R").unwrap();
    for n in 1..=5usize {
        // R(X0,X1,X2), R(X2,?,?)… chained joins of length n.
        let mut pos = Vec::new();
        for i in 0..n {
            pos.push(QueryAtom::new(
                r,
                vec![
                    QTerm::Var(QVar::new(3 * i as u32)),
                    QTerm::Var(QVar::new(3 * i as u32 + 1)),
                    QTerm::Var(QVar::new(3 * i as u32 + 2)),
                ],
            ));
        }
        // Chain them: share the first variable across atoms (star join).
        let pos: Vec<QueryAtom> = pos
            .into_iter()
            .map(|a| {
                let mut args = a.args.to_vec();
                args[0] = QTerm::Var(QVar::new(0));
                QueryAtom::new(a.pred, args)
            })
            .collect();
        let q = Nbcq::boolean(&u, pos, vec![]).unwrap();
        let t = median_time(5, || wfdl_query::holds(&u, &model, &q));
        let yes = wfdl_query::holds(&u, &model, &q);
        println!("{:>6} {:>11.2?} {:>10}", n, t, yes);
    }
    println!("(combined complexity grows with n — the n·δ bound is linear in n)\n");
}

/// E6 — Example 2: UNA vs no-UNA on the scaled employment ontology.
pub fn e6_dllite_employment() {
    println!("== E6: Example 2 — DL-Lite employment, UNA vs no-UNA ==");
    println!(
        "{:>9} {:>10} {:>12} {:>14} {:>12}",
        "persons", "employed", "validIDs", "validIDs", "time"
    );
    println!(
        "{:>9} {:>10} {:>12} {:>14} {:>12}",
        "", "", "(UNA)", "(no-UNA)", "(UNA)"
    );
    for n in [4usize, 8, 16, 32, 64] {
        let onto = employment_ontology(&EmploymentConfig {
            num_persons: n,
            employed_fraction: 0.5,
            seed: 5,
        });
        let mut u = Universe::new();
        let tr = translate(&mut u, &onto).unwrap();
        let sigma = tr.program.clone().skolemize(&mut u).unwrap();
        let model = solve(&mut u, &tr.database, &sigma, WfsOptions::depth(5)); // warm-up
        let t = median_time(3, || {
            solve(&mut u, &tr.database, &sigma, WfsOptions::depth(5))
        });
        let valid = u.lookup_pred("ValidID").unwrap();
        let una_count = model
            .true_atoms()
            .filter(|&a| u.atoms.pred(a) == valid)
            .count();
        let no_una = solve_no_una(&mut u, &tr.database, &sigma, ChaseBudget::depth(5));
        let no_una_count = no_una
            .true_atoms()
            .filter(|&a| u.atoms.pred(a) == valid)
            .count();
        let employed = onto
            .abox
            .concept_assertions
            .iter()
            .filter(|(c, _)| c == "Employed")
            .count();
        println!(
            "{:>9} {:>10} {:>12} {:>14} {:>11.2?}",
            n, employed, una_count, no_una_count, t
        );
    }
    println!(
        "paper: under UNA every employee ID validates (ValidID(f(a)) ∈ WFS);\n\
         without UNA none can be certainly validated.\n"
    );
}

/// E7 — engine ablation: one semantics, three engines (Theorem 8 made
/// executable).
pub fn e7_engine_ablation() {
    println!("== E7: engine ablation (Wp / Wp-literal / alternating / forward) ==");
    type WorkloadFn = Box<
        dyn Fn() -> (
            Universe,
            wfdl_storage::Database,
            wfdl_core::SkolemProgram,
            WfsOptions,
        ),
    >;
    let workloads: Vec<(String, WorkloadFn)> = vec![
        (
            "example4 depth 8".into(),
            Box::new(|| {
                let mut u = Universe::new();
                let (db, sigma) = paper::example4(&mut u);
                (u, db, sigma, WfsOptions::depth(8))
            }),
        ),
        (
            "chains 64 depth 6".into(),
            Box::new(|| {
                let mut u = Universe::new();
                let sigma = example4_sigma(&mut u);
                let db = chain_database(&mut u, 64);
                (u, db, sigma, WfsOptions::depth(6))
            }),
        ),
        (
            "win-move 512".into(),
            Box::new(|| {
                let mut u = Universe::new();
                let sigma = winmove_sigma(&mut u);
                let db = winmove_database(
                    &mut u,
                    &WinMoveConfig {
                        nodes: 512,
                        out_degree: 2.0,
                        forward_bias: 0.5,
                        seed: 3,
                    },
                );
                (u, db, sigma, WfsOptions::unbounded())
            }),
        ),
    ];
    println!(
        "{:>20} {:>14} {:>14} {:>14} {:>14}",
        "workload", "Wp", "Wp-literal", "alternating", "forward"
    );
    for (name, mk) in &workloads {
        let mut row = format!("{name:>20}");
        let mut verdicts = Vec::new();
        for engine in [
            EngineKind::Wp,
            EngineKind::WpLiteral,
            EngineKind::Alternating,
            EngineKind::Forward,
        ] {
            let t = median_time(3, || {
                let (mut u, db, sigma, opts) = mk();
                solve(&mut u, &db, &sigma, opts.with_engine(engine))
            });
            let (mut u, db, sigma, opts) = mk();
            let model = solve(&mut u, &db, &sigma, opts.with_engine(engine));
            verdicts.push(model.counts());
            row.push_str(&format!(" {:>13.2?}", t));
        }
        println!("{row}");
        assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "engines disagree on {name}: {verdicts:?}"
        );
    }
    println!("(identical (true, false, unknown) counts asserted per workload)\n");
}

/// E8 — stratified programs: WFS coincides with the perfect model; measure
/// the overhead of full WFS over stratified evaluation.
pub fn e8_stratified_vs_wfs() {
    println!("== E8: stratified baseline vs full WFS ==");
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>8}",
        "seed", "rules", "stratified", "wfs", "agree"
    );
    for seed in 0..5u64 {
        let mut u = Universe::new();
        let w = random_stratified_program(
            &mut u,
            &RandomConfig {
                seed,
                num_rules: 14,
                num_preds: 8,
                negation_prob: 0.6,
                existential_prob: 0.0,
                ..Default::default()
            },
            3,
        );
        let db = random_database(
            &mut u,
            &w,
            &RandomDbConfig {
                num_constants: 12,
                num_facts: 48,
                seed: seed ^ 0x5A,
            },
        );
        let strat = stratify(&w.sigma).expect("stratified by construction");
        let model = solve(&mut u, &db, &w.sigma, WfsOptions::unbounded());
        let t_strat = median_time(5, || perfect_model(&u, &model.ground, &strat));
        let t_wfs = median_time(5, || solve(&mut u, &db, &w.sigma, WfsOptions::unbounded()));
        let perfect = perfect_model(&u, &model.ground, &strat);
        let agree = model
            .ground
            .atoms()
            .iter()
            .all(|&a| perfect.value(a) == model.value(a));
        println!(
            "{:>6} {:>12} {:>13.2?} {:>13.2?} {:>8}",
            seed,
            model.ground.num_rules(),
            t_strat,
            t_wfs,
            agree
        );
        assert!(agree);
    }
    println!("(paper/[1]: on stratified programs the WFS equals the perfect model)\n");
}

/// E9 — win–move at scale: three-valued model statistics and runtime.
pub fn e9_winmove_scaling() {
    println!("== E9: win–move — three-valued models at scale ==");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "nodes", "won", "lost", "drawn", "stages", "time"
    );
    let mut series = Series::default();
    for nodes in [64usize, 128, 256, 512, 1024, 2048] {
        let mut u = Universe::new();
        let sigma = winmove_sigma(&mut u);
        let db = winmove_database(
            &mut u,
            &WinMoveConfig {
                nodes,
                out_degree: 2.0,
                forward_bias: 0.5,
                seed: 17,
            },
        );
        // Pinned to W_P: the "stages" column is the paper's fixpoint stage
        // count, which the (default) modular engine does not report — it
        // counts dependency components instead.
        let opts = WfsOptions::unbounded().with_engine(EngineKind::Wp);
        let model = solve(&mut u, &db, &sigma, opts); // warm-up
        let t = median_time(3, || solve(&mut u, &db, &sigma, opts));
        let win = u.lookup_pred("win").unwrap();
        let mut won = 0usize;
        let mut drawn = 0usize;
        for sa in model.segment.atoms() {
            if u.atoms.pred(sa.atom) == win {
                match model.value(sa.atom) {
                    Truth::True => won += 1,
                    Truth::Unknown => drawn += 1,
                    Truth::False => {}
                }
            }
        }
        let lost = nodes - won - drawn;
        println!(
            "{:>8} {:>8} {:>8} {:>8} {:>8} {:>11.2?}",
            nodes,
            won,
            lost,
            drawn,
            model.stages(),
            t
        );
        series.push(nodes as f64, t.as_secs_f64());
    }
    println!(
        "log-log slope: {:.2} (PTIME data complexity; WFS finds wins, losses \
         and draws in one fixpoint)\n",
        series.loglog_slope()
    );
}

/// E10 — WCHECK: demand-driven membership vs global fixpoint.
pub fn e10_wcheck() {
    println!("== E10: WCHECK — demand-driven membership vs global solve ==");
    let mut u = Universe::new();
    let sigma = example4_sigma(&mut u);
    let db = chain_database(&mut u, 64);
    let model = solve(&mut u, &db, &sigma, WfsOptions::depth(6));
    let t_global = median_time(3, || solve(&mut u, &db, &sigma, WfsOptions::depth(6)));
    // Probe one T-atom per chain: its cone is a single chain.
    let t_pred = u.lookup_pred("T").unwrap();
    let c0 = u.lookup_constant("c0").unwrap();
    let t_atom = u.atoms.lookup(t_pred, &[c0]).unwrap();
    let t_demand = median_time(10, || wcheck::decide(&model.ground, t_atom));
    println!("global solve (64 chains, depth 6): {t_global:.2?}");
    println!("wcheck::decide(T(c0)) on same ground program: {t_demand:.2?}");
    println!(
        "speedup: {:.1}x (the dependency cone of one chain is 1/64 of the program)",
        t_global.as_secs_f64() / t_demand.as_secs_f64().max(1e-12)
    );
    assert_eq!(wcheck::decide(&model.ground, t_atom), model.value(t_atom));
    // Certificate extraction round trip.
    let cert = wcheck::certify(&model.segment, &model.result.interp, t_atom).unwrap();
    assert!(wcheck::verify(&model.segment, &model.result.interp, &cert));
    println!(
        "certificate path length for T(c0): {} (verified independently)\n",
        cert.path.len()
    );
}

/// E11 — the finite-type argument behind decidability (Section 3): as
/// segments deepen, atom counts grow without bound while the number of
/// distinct canonical types plateaus.
pub fn e11_type_census() {
    println!("== E11: locality — atom count grows, type count plateaus ==");
    println!("{:>6} {:>10} {:>16}", "depth", "atoms", "distinct types");
    for depth in [3u32, 5, 7, 9, 11] {
        let mut u = Universe::new();
        let (db, sigma) = paper::example4(&mut u);
        let seg = ChaseSegment::build(&mut u, &db, &sigma, ChaseBudget::depth(depth));
        let interp = ForwardEngine::new(&seg).solve().interp;
        let census = wfdl_wfs::type_census(&mut u, &seg, &interp);
        println!(
            "{:>6} {:>10} {:>16}",
            depth, census.atoms, census.distinct_types
        );
    }
    println!(
        "paper (Lemmas 10/11, Prop. 12): finitely many non-isomorphic types\n\
         over a schema ⇒ bounded chase depth suffices for query answering.\n"
    );
}

/// E2-adjacent: three-valued query answering sanity — an undefined query on
/// a draw cycle (used by the binary's `--all` run as a smoke check).
pub fn smoke_three_valued_query() {
    let mut u = Universe::new();
    let sigma = winmove_sigma(&mut u);
    let db = wfdl_gen::winmove_cycle(&mut u, 3);
    let model = solve(&mut u, &db, &sigma, WfsOptions::unbounded());
    let win = u.lookup_pred("win").unwrap();
    let q = Nbcq::boolean(
        &u,
        vec![QueryAtom::new(win, vec![QTerm::Var(QVar::new(0))])],
        vec![],
    )
    .unwrap();
    assert_eq!(holds3(&u, &model, &q), Truth::Unknown);
}
