//! # `wfdl-bench` — benchmark harness for the paper's evaluation artifacts
//!
//! The paper is a theory paper: its "evaluation" is a set of complexity
//! theorems, worked examples and one figure. This crate regenerates each of
//! them (experiment index E1–E10 in `DESIGN.md`):
//!
//! * an `experiments` binary that prints the measured tables/series next to
//!   the paper's expected shapes (`cargo run -p wfdl-bench --bin
//!   experiments -- --all`), and
//! * Criterion benches (`cargo bench`) timing the kernels behind each
//!   experiment.

pub mod experiments;
pub mod output;
pub mod timing;

pub use output::write_bench_json;
pub use timing::{fit_loglog_slope, median_time, Series};
