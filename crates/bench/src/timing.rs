//! Small measurement utilities for the experiments binary.

use std::time::{Duration, Instant};

/// Runs `f` `runs` times and returns the median wall-clock duration.
pub fn median_time<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(runs >= 1);
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            let out = f();
            let dt = start.elapsed();
            std::hint::black_box(out);
            dt
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// A measured series: x-values (workload sizes) and y-values (seconds).
#[derive(Clone, Debug, Default)]
pub struct Series {
    /// Workload sizes.
    pub xs: Vec<f64>,
    /// Median runtimes in seconds.
    pub ys: Vec<f64>,
}

impl Series {
    /// Adds a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.xs.push(x);
        self.ys.push(y);
    }

    /// Least-squares slope of `ln y` against `ln x` — the empirical
    /// polynomial degree. Slope ≈ 1 is linear, ≈ 2 quadratic, etc.
    pub fn loglog_slope(&self) -> f64 {
        fit_loglog_slope(&self.xs, &self.ys)
    }
}

/// Least-squares slope of `ln y` vs `ln x`.
pub fn fit_loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(&x, &y)| x > 0.0 && y > 0.0)
        .map(|(&x, &y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_linear_series_is_one() {
        let xs = vec![1.0, 2.0, 4.0, 8.0, 16.0];
        let ys = vec![3.0, 6.0, 12.0, 24.0, 48.0];
        let s = fit_loglog_slope(&xs, &ys);
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn slope_of_quadratic_series_is_two() {
        let xs = vec![1.0, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x * x).collect();
        let s = fit_loglog_slope(&xs, &ys);
        assert!((s - 2.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn median_time_is_positive() {
        let d = median_time(3, || (0..1000).sum::<u64>());
        assert!(d.as_nanos() > 0);
    }
}
