//! E4 — Theorem 13 combined complexity: random guarded programs with
//! growing maximum arity `w`. The paper's bounds are EXPTIME (bounded
//! arity) and 2-EXPTIME (unbounded); the measured cost blows up quickly
//! with `w` even at small scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfdl_core::Universe;
use wfdl_gen::{random_database, random_program, RandomConfig, RandomDbConfig};
use wfdl_wfs::{solve, WfsOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm13_combined");
    group.sample_size(10);
    for w in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("arity", w), &w, |b, &w| {
            b.iter(|| {
                let mut u = Universe::new();
                let workload = random_program(
                    &mut u,
                    &RandomConfig {
                        num_preds: 6,
                        max_arity: w,
                        num_rules: 14,
                        extra_pos: 1.0,
                        negation_prob: 0.4,
                        existential_prob: 0.2,
                        seed: 7,
                    },
                );
                let db = random_database(
                    &mut u,
                    &workload,
                    &RandomDbConfig {
                        num_constants: 6,
                        num_facts: 24,
                        seed: 11,
                    },
                );
                solve(&mut u, &db, &workload.sigma, WfsOptions::depth(4))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
