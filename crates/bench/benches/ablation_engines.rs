//! E7 — engine ablation: the same well-founded model computed by the
//! definitional `W_P` engine (accelerated and literal stepping), Van
//! Gelder's alternating fixpoint, and the forward-proof `Ŵ_P` engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfdl_core::Universe;
use wfdl_gen::{winmove_database, winmove_sigma, WinMoveConfig};
use wfdl_wfs::{solve, EngineKind, WfsOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_engines");
    group.sample_size(10);

    let mut u = Universe::new();
    let sigma = winmove_sigma(&mut u);
    let db = winmove_database(
        &mut u,
        &WinMoveConfig {
            nodes: 512,
            out_degree: 2.0,
            forward_bias: 0.5,
            seed: 3,
        },
    );
    let _ = solve(&mut u, &db, &sigma, WfsOptions::unbounded());

    for (name, engine) in [
        ("wp", EngineKind::Wp),
        ("wp_literal", EngineKind::WpLiteral),
        ("alternating", EngineKind::Alternating),
        ("forward", EngineKind::Forward),
    ] {
        group.bench_with_input(
            BenchmarkId::new("winmove512", name),
            &engine,
            |b, &engine| {
                b.iter(|| {
                    solve(
                        &mut u,
                        &db,
                        &sigma,
                        WfsOptions::unbounded().with_engine(engine),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
