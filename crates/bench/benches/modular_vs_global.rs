//! Modular (SCC-condensation) evaluation vs the global fixpoint engines —
//! the headline measurement for the dense-CSR + modular-evaluation
//! refactor. Engine time is isolated by extracting the ground program once
//! and timing only the fixpoint computation.
//!
//! Workloads:
//! * `stratified` — a random stratified guarded program (negation across
//!   strata only): every component is definite, so the modular engine does
//!   one linear sweep while the global engines run staged unfounded-set
//!   rounds;
//! * `winmove_dag` — win–move on an acyclic game graph: the alternation
//!   depth (and hence the global engines' stage count) grows with the
//!   longest path, while the condensation stays all-definite;
//! * `winmove512` — the win–move game on a random graph with draw cycles:
//!   the recursive components exist but stay tiny.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfdl_core::Universe;
use wfdl_gen::{
    random_database, random_stratified_program, winmove_database, winmove_sigma, RandomConfig,
    RandomDbConfig, WinMoveConfig,
};
use wfdl_storage::GroundProgram;
use wfdl_wfs::{solve, AlternatingEngine, ModularEngine, StepMode, WfsOptions, WpEngine};

fn stratified_ground() -> GroundProgram {
    let mut u = Universe::new();
    let w = random_stratified_program(
        &mut u,
        &RandomConfig {
            seed: 2,
            num_rules: 32,
            num_preds: 12,
            negation_prob: 0.6,
            existential_prob: 0.0,
            ..Default::default()
        },
        4,
    );
    let db = random_database(
        &mut u,
        &w,
        &RandomDbConfig {
            num_constants: 48,
            num_facts: 2048,
            seed: 9,
        },
    );
    solve(&mut u, &db, &w.sigma, WfsOptions::unbounded()).ground
}

fn winmove_ground(nodes: usize, forward_bias: f64) -> GroundProgram {
    let mut u = Universe::new();
    let sigma = winmove_sigma(&mut u);
    let db = winmove_database(
        &mut u,
        &WinMoveConfig {
            nodes,
            out_degree: 2.0,
            forward_bias,
            seed: 3,
        },
    );
    solve(&mut u, &db, &sigma, WfsOptions::unbounded()).ground
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("modular_vs_global");
    group.sample_size(30);

    for (workload, ground) in [
        ("stratified", stratified_ground()),
        ("winmove_dag", winmove_ground(2048, 1.0)),
        ("winmove512", winmove_ground(512, 0.5)),
    ] {
        group.bench_with_input(BenchmarkId::new(workload, "modular"), &ground, |b, g| {
            b.iter(|| ModularEngine::new(g).solve());
        });
        group.bench_with_input(BenchmarkId::new(workload, "wp"), &ground, |b, g| {
            b.iter(|| WpEngine::new(g).solve(StepMode::Accelerated));
        });
        group.bench_with_input(
            BenchmarkId::new(workload, "alternating"),
            &ground,
            |b, g| {
                b.iter(|| AlternatingEngine::new(g).solve());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
