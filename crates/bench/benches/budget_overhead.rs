//! Ambient cost of the solve-wide budget plumbing: full pipeline solves
//! (chase + modular engine, fresh universe per sample) with no budget vs
//! an ample budget that never trips (far-future deadline + huge memory
//! limit + live cancel token — every trip point pays its real poll).
//!
//! Workloads are the two shapes where per-boundary polling could bite:
//!
//! * `chain256` — Example 4 chains at 256 seeds, depth 8: deep chase with
//!   many rounds, and thousands of singleton components in the engine
//!   (the shape the 64-ordinal poll stride exists for);
//! * `fanout8192` — 8192 independent shallow groups: wide frontiers and
//!   huge wavefronts.
//!
//! Before timing, the budgeted model is asserted bit-identical to the
//! unbudgeted one. Output: human-readable medians with the overhead
//! percentage on stdout, machine-readable `BENCH_robust.json` (override
//! with `WFDL_BENCH_JSON`, sample count with `WFDL_BENCH_SAMPLES`). The
//! `*_ns` medians feed the CI bench-regression gate; `overhead_pct` is
//! the headline number, budgeted for < 2%.

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use wfdl_core::{CancelToken, SkolemProgram, SolveBudget, Universe};
use wfdl_gen::{chain_database, example4_sigma, fanout_database, fanout_sigma, FanoutConfig};
use wfdl_storage::Database;
use wfdl_wfs::{solve, solve_budgeted, WfsOptions};

fn sample_count() -> usize {
    std::env::var("WFDL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(30)
}

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// An ample budget: every trip point does its full check, none ever trips.
fn ample_budget() -> SolveBudget {
    SolveBudget::unlimited()
        .with_deadline_in(Duration::from_secs(24 * 3600))
        .with_cancel(CancelToken::new())
        .with_mem_limit(1 << 42)
}

struct Workload {
    name: &'static str,
    setup: fn(&mut Universe) -> (Database, SkolemProgram),
    options: WfsOptions,
}

struct Outcome {
    name: &'static str,
    atoms: usize,
    unbudgeted_ns: u64,
    budgeted_ns: u64,
    overhead_pct: f64,
}

fn run_workload(w: &Workload, samples: usize) -> Outcome {
    // Correctness first: the ample budget must be invisible in the model.
    let (base_atoms, base_render) = {
        let mut u = Universe::new();
        let (db, sigma) = (w.setup)(&mut u);
        let model = solve(&mut u, &db, &sigma, w.options);
        (model.segment.atoms().len(), model.render_true(&u))
    };
    {
        let mut u = Universe::new();
        let (db, sigma) = (w.setup)(&mut u);
        let model = solve_budgeted(&mut u, &db, &sigma, w.options, &ample_budget());
        // chain256 is depth-truncated by design; what must NOT happen is a
        // budget trip.
        assert!(
            !model
                .outcome
                .truncation()
                .is_some_and(|r| r.is_budget_trip()),
            "{}: the ample budget tripped ({:?})",
            w.name,
            model.outcome
        );
        assert_eq!(
            model.render_true(&u),
            base_render,
            "{}: the budget perturbed the model",
            w.name
        );
    }

    // The two legs are interleaved sample by sample so slow host drift
    // (thermal, noisy neighbors) hits both measurements equally, and the
    // within-pair order alternates each iteration — the second solve of a
    // pair systematically inherits allocator/page-cache state from the
    // first, which would otherwise masquerade as budget overhead.
    let budget = ample_budget();
    let mut unbudgeted = Vec::with_capacity(samples);
    let mut budgeted = Vec::with_capacity(samples);
    let mut time_one = |use_budget: bool, record: bool| {
        let mut u = Universe::new();
        let (db, sigma) = (w.setup)(&mut u);
        let start = Instant::now();
        let out = if use_budget {
            solve_budgeted(&mut u, &db, &sigma, w.options, &budget)
        } else {
            solve(&mut u, &db, &sigma, w.options)
        };
        let elapsed = start.elapsed().as_nanos() as u64;
        std::hint::black_box(&out);
        if record {
            if use_budget {
                budgeted.push(elapsed);
            } else {
                unbudgeted.push(elapsed);
            }
        }
    };
    // First iteration is an untimed warm-up.
    for i in 0..=samples {
        let budget_first = i % 2 == 0;
        time_one(budget_first, i > 0);
        time_one(!budget_first, i > 0);
    }
    let unbudgeted_ns = median(unbudgeted);
    let budgeted_ns = median(budgeted);
    let overhead_pct = (budgeted_ns as f64 / unbudgeted_ns as f64 - 1.0) * 100.0;
    println!(
        "budget_overhead/{}: unbudgeted {} vs budgeted {} — {overhead_pct:+.2}% ({samples} samples)",
        w.name,
        fmt_ns(unbudgeted_ns),
        fmt_ns(budgeted_ns)
    );
    Outcome {
        name: w.name,
        atoms: base_atoms,
        unbudgeted_ns,
        budgeted_ns,
        overhead_pct,
    }
}

fn main() {
    let samples = sample_count();
    println!("budget_overhead: {samples} samples, fresh universe per sample");

    let workloads = [
        Workload {
            name: "chain256",
            setup: |u| {
                let sigma = example4_sigma(u);
                let db = chain_database(u, 256);
                (db, sigma)
            },
            options: WfsOptions::depth(8),
        },
        Workload {
            name: "fanout8192",
            setup: |u| {
                let sigma = fanout_sigma(u);
                let db = fanout_database(
                    u,
                    &FanoutConfig {
                        groups: 8192,
                        recursive_fraction: 0.25,
                        seed: 2013,
                    },
                );
                (db, sigma)
            },
            options: WfsOptions::unbounded(),
        },
    ];

    let outcomes: Vec<Outcome> = workloads.iter().map(|w| run_workload(w, samples)).collect();

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"workloads\": [");
    for (i, o) in outcomes.iter().enumerate() {
        let comma = if i + 1 < outcomes.len() { "," } else { "" };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", o.name);
        let _ = writeln!(json, "      \"atoms\": {},", o.atoms);
        let _ = writeln!(json, "      \"unbudgeted_ns\": {},", o.unbudgeted_ns);
        let _ = writeln!(json, "      \"budgeted_ns\": {},", o.budgeted_ns);
        let _ = writeln!(json, "      \"overhead_pct\": {:.2}", o.overhead_pct);
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    wfdl_bench::write_bench_json("BENCH_robust.json", &json);
}
