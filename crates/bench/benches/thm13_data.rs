//! E3 — Theorem 13 data complexity: WFS solving with fixed `Σ` and growing
//! database (the Example 4 chain family). The paper claims PTIME data
//! complexity; the measured growth should be near-linear in `|D|`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfdl_core::Universe;
use wfdl_gen::{chain_database, example4_sigma};
use wfdl_wfs::{solve, WfsOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm13_data");
    group.sample_size(10);
    for seeds in [8usize, 32, 128] {
        let mut u = Universe::new();
        let sigma = example4_sigma(&mut u);
        let db = chain_database(&mut u, seeds);
        // Warm-up interns every term/atom the solve will touch.
        let _ = solve(&mut u, &db, &sigma, WfsOptions::depth(6));
        group.bench_with_input(BenchmarkId::from_parameter(db.len()), &seeds, |b, _| {
            b.iter(|| solve(&mut u, &db, &sigma, WfsOptions::depth(6)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
