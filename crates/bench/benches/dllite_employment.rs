//! E6 — Example 2: DL-Lite employment ontology at scale (translation +
//! well-founded reasoning under UNA).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfdl_core::Universe;
use wfdl_gen::{employment_ontology, EmploymentConfig};
use wfdl_ontology::translate;
use wfdl_wfs::{solve, WfsOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dllite_employment");
    group.sample_size(10);
    for persons in [8usize, 32, 128] {
        let onto = employment_ontology(&EmploymentConfig {
            num_persons: persons,
            employed_fraction: 0.5,
            seed: 5,
        });
        let mut u = Universe::new();
        let tr = translate(&mut u, &onto).unwrap();
        let sigma = tr.program.clone().skolemize(&mut u).unwrap();
        let _ = solve(&mut u, &tr.database, &sigma, WfsOptions::depth(5));
        group.bench_with_input(BenchmarkId::from_parameter(persons), &persons, |b, _| {
            b.iter(|| solve(&mut u, &tr.database, &sigma, WfsOptions::depth(5)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
