//! Query-serving throughput: prepared queries on a shared immutable model
//! vs the old parse-per-ask path, plus thread scaling.
//!
//! The compile → solve → serve redesign exists for one workload shape:
//! *reason once, query many times*. This bench quantifies both halves of
//! the claim on a 1k-query batch over the scaled Example 2 employment
//! ontology:
//!
//! * **prepared vs parse-per-ask** — evaluating the batch through
//!   [`SolvedModel::ask3_prepared`]/[`answers_prepared`] (parse/lower once,
//!   certain-atom index built once at solve time) against the deprecated
//!   `Reasoner::ask`-style loop (re-parse, re-intern and re-index on every
//!   single ask);
//! * **thread scaling** — N threads sharing one `Arc<SolvedModel>`, each
//!   evaluating the full batch; queries/sec should grow with threads since
//!   the serve path takes `&self` and never locks.
//!
//! Output mirrors `pipeline_end_to_end`: human-readable medians on stdout
//! and machine-readable `BENCH_query.json` (override the path with
//! `WFDL_BENCH_JSON`, the sample count with `WFDL_BENCH_SAMPLES`).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use wfdatalog::{KnowledgeBase, PreparedQuery, SolvedModel, WfsOptions};
use wfdl_gen::{employment_ontology, EmploymentConfig};

const BATCH: usize = 1000;
const DEPTH: u32 = 5;
const PERSONS: usize = 192;
const THREADS: [usize; 3] = [1, 2, 4];

fn sample_count() -> usize {
    std::env::var("WFDL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(30)
}

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// The 1k-query batch: per-person ID lookups (Boolean + answer tuples),
/// validity joins with negation, and a few unknown-constant probes that
/// exercise the short-circuit path.
fn query_batch() -> Vec<String> {
    let mut qs = Vec::with_capacity(BATCH);
    let mut i = 0usize;
    while qs.len() < BATCH {
        let person = format!("per{}", i % PERSONS);
        match i % 5 {
            0 => qs.push(format!("?- EmployeeID({person}, X).")),
            1 => qs.push(format!("?- JobSeekerID({person}, X).")),
            2 => qs.push(format!("?- EmployeeID({person}, X), ValidID(X).")),
            3 => qs.push("?(X) Person(X), not Employed(X).".to_owned()),
            _ => qs.push(format!("?- EmployeeID(stranger{i}, X).")),
        }
        i += 1;
    }
    qs
}

/// Evaluates one prepared query (Boolean → ask3, else answers), returning
/// a cheap fingerprint so the work cannot be optimized away.
fn eval_prepared(model: &SolvedModel, q: &PreparedQuery) -> usize {
    if q.is_boolean() {
        model.ask3_prepared(q).is_true() as usize
    } else {
        model.answers_prepared(q).len()
    }
}

/// The historical serving loop (the pre-lifecycle `Reasoner` façade,
/// now deleted): parse, intern and index on every single ask.
fn run_parse_per_ask(samples: usize, queries: &[String]) -> (Vec<u64>, usize) {
    let onto = employment_ontology(&EmploymentConfig {
        num_persons: PERSONS,
        employed_fraction: 0.5,
        seed: 2013,
    });
    let mut universe = wfdatalog::Universe::new();
    let translated =
        wfdatalog::ontology::translate(&mut universe, &onto).expect("ontology compiles");
    let (sigma, _violations) =
        wfdatalog::wfs::lower_with_constraints(&mut universe, &translated.program)
            .expect("constraints lower");
    let model = wfdatalog::wfs::solve(
        &mut universe,
        &translated.database,
        &sigma,
        WfsOptions::depth(DEPTH),
    );
    let mut fingerprint = 0usize;
    let mut times = Vec::with_capacity(samples);
    for i in 0..=samples {
        let start = Instant::now();
        let mut acc = 0usize;
        for q in queries {
            let ast = wfdatalog::syntax::parse_single_query(q).expect("query parses");
            let parsed = wfdatalog::syntax::lower_query(&mut universe, &ast).expect("query lowers");
            if parsed.is_boolean() {
                acc += wfdatalog::query::holds3(&universe, &model, &parsed).is_true() as usize;
            } else {
                acc += wfdatalog::query::answers(&universe, &model, &parsed).len();
            }
        }
        let ns = start.elapsed().as_nanos() as u64;
        // Discard the cold first pass: it uniquely pays for interning the
        // batch's fresh constants into the universe.
        if i > 0 {
            times.push(ns);
        }
        fingerprint = acc;
    }
    (times, fingerprint)
}

struct PreparedOutcome {
    prepare_ns: Vec<u64>,
    eval_ns: Vec<u64>,
    /// Wall-clock per thread count, each thread evaluating the full batch.
    threads_ns: Vec<(usize, Vec<u64>)>,
    fingerprint: usize,
}

fn run_prepared(samples: usize, queries: &[String]) -> PreparedOutcome {
    let onto = employment_ontology(&EmploymentConfig {
        num_persons: PERSONS,
        employed_fraction: 0.5,
        seed: 2013,
    });
    let mut kb = KnowledgeBase::from_ontology(&onto)
        .expect("ontology compiles")
        .with_options(WfsOptions::depth(DEPTH));
    let model = kb.solve();

    // Preparation cost (parse + frozen lowering for the whole batch).
    let mut prepare_ns = Vec::with_capacity(samples);
    let mut prepared: Vec<PreparedQuery> = Vec::new();
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        prepared = queries
            .iter()
            .map(|q| model.prepare(q).expect("query prepares"))
            .collect();
        prepare_ns.push(start.elapsed().as_nanos() as u64);
    }

    // Untimed warm-up pass: builds the lazy possible-atom index (the
    // first ask3 pays it once per model) and warms caches, mirroring the
    // discarded cold pass of the parse-per-ask side.
    let mut fingerprint = 0usize;
    for q in prepared.iter() {
        fingerprint += eval_prepared(&model, q);
    }

    // Single-threaded re-evaluation of the batch.
    let mut eval_ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        let mut acc = 0usize;
        for q in &prepared {
            acc += eval_prepared(&model, q);
        }
        eval_ns.push(start.elapsed().as_nanos() as u64);
        fingerprint = acc;
    }

    // Thread scaling: each thread evaluates the full batch.
    let prepared = Arc::new(prepared);
    let mut threads_ns = Vec::new();
    for &n in &THREADS {
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let model = Arc::clone(&model);
                    let prepared = Arc::clone(&prepared);
                    std::thread::spawn(move || {
                        let mut acc = 0usize;
                        for q in prepared.iter() {
                            acc += eval_prepared(&model, q);
                        }
                        acc
                    })
                })
                .collect();
            let mut acc = 0usize;
            for h in handles {
                acc += h.join().expect("serving thread panicked");
            }
            times.push(start.elapsed().as_nanos() as u64);
            fingerprint = fingerprint.max(acc / n.max(1));
        }
        threads_ns.push((n, times));
    }

    PreparedOutcome {
        prepare_ns,
        eval_ns,
        threads_ns,
        fingerprint,
    }
}

fn main() {
    let samples = sample_count();
    let queries = query_batch();

    let (old_ns, old_fp) = run_parse_per_ask(samples, &queries);
    let out = run_prepared(samples, &queries);
    assert_eq!(
        old_fp, out.fingerprint,
        "prepared and parse-per-ask paths must agree on the batch"
    );

    let old_m = median(old_ns);
    let prep_m = median(out.prepare_ns);
    let eval_m = median(out.eval_ns);
    let speedup = old_m as f64 / eval_m as f64;
    println!(
        "query_throughput/batch{BATCH}/parse_per_ask: median {} ({samples} samples)",
        fmt_ns(old_m)
    );
    println!(
        "query_throughput/batch{BATCH}/prepare_once: median {} ({samples} samples)",
        fmt_ns(prep_m)
    );
    println!(
        "query_throughput/batch{BATCH}/eval_prepared: median {} ({samples} samples) — {speedup:.1}x vs parse-per-ask",
        fmt_ns(eval_m)
    );

    let mut json = String::from("{\n");
    writeln!(json, "  \"samples\": {samples},").unwrap();
    writeln!(json, "  \"batch\": {BATCH},").unwrap();
    writeln!(
        json,
        "  \"workload\": \"employment{PERSONS}_depth{DEPTH}\","
    )
    .unwrap();
    // Thread scaling is bounded by the machine: on a single-core host the
    // 2/4-thread numbers only measure overlap, not parallelism. The CI
    // bench job runs this on a multicore runner and asserts scaling > 1.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    writeln!(json, "  \"available_parallelism\": {cores},").unwrap();
    writeln!(json, "  \"parse_per_ask_ns\": {old_m},").unwrap();
    writeln!(json, "  \"prepare_once_ns\": {prep_m},").unwrap();
    writeln!(json, "  \"eval_prepared_ns\": {eval_m},").unwrap();
    writeln!(json, "  \"prepared_speedup\": {speedup:.2},").unwrap();
    json.push_str("  \"threads\": [\n");

    let mut qps1 = 0f64;
    for (i, (n, times)) in out.threads_ns.iter().enumerate() {
        let m = median(times.clone());
        let qps = (*n as f64 * BATCH as f64) / (m as f64 / 1e9);
        if *n == 1 {
            qps1 = qps;
        }
        let scaling = if qps1 > 0.0 { qps / qps1 } else { 0.0 };
        println!(
            "query_throughput/threads{n}: median {} — {:.0} queries/sec ({scaling:.2}x vs 1 thread)",
            fmt_ns(m),
            qps
        );
        writeln!(
            json,
            "    {{\"threads\": {n}, \"median_ns\": {m}, \"queries_per_sec\": {qps:.0}, \"scaling\": {scaling:.2}}}{}",
            if i + 1 == out.threads_ns.len() { "" } else { "," }
        )
        .unwrap();
    }
    json.push_str("  ]\n}\n");

    wfdl_bench::write_bench_json("BENCH_query.json", &json);
}
