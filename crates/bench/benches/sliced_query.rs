//! Goal-directed (sliced) solving vs full solving on the fanout
//! workload: one query touching one branch of a wide program.
//!
//! The scenario the slicer targets: a program with many independent rule
//! cones where a query needs only one of them. `fanout_sigma` has two —
//! a stratified `src → mid → out` pipeline over **all** 8192 groups and
//! a recursive-through-negation `pick/flip/flop` family over a small
//! fraction of them. The one-branch query `?- flip(c0).` slices to the
//! narrow recursive cone, so the sliced solve never chases, grounds, or
//! evaluates the wide stratified fan that dominates the full solve.
//!
//! Legs, per sample (fresh state each time — no warm caches):
//!
//! * **engine**: `wfdl_wfs::solve_budgeted` vs
//!   `solve_sliced_packaged_budgeted` on a typed fanout universe;
//! * **façade**: `KnowledgeBase::solve` vs `KnowledgeBase::solve_for`
//!   (includes slice computation, query parsing, snapshot repackaging);
//! * **façade warm**: `solve_for` after a prior full solve, measuring
//!   how the slice composes with the per-component fingerprint memo.
//!
//! Output mirrors the other benches: human-readable medians on stdout,
//! machine-readable `BENCH_sliced.json` (path override `WFDL_BENCH_JSON`,
//! sample count `WFDL_BENCH_SAMPLES`).

use std::fmt::Write as _;
use std::time::Instant;
use wfdatalog::{FactBatch, KnowledgeBase, ProgramSlice, SolveBudget, Universe, WfsOptions};
use wfdl_gen::{fanout_database, fanout_sigma, FanoutConfig};

const GROUPS: usize = 8192;
// 1/32 of the groups carry the recursive cone: the query's branch is
// narrow, the dropped fan is wide — the magic-sets sweet spot.
const RECURSIVE_FRACTION: f64 = 0.03125;
const QUERY: &str = "?- flip(c0).";
const GOAL_PRED: &str = "flip";

/// The fanout program as surface text, for the façade legs (the engine
/// leg uses the typed `fanout_sigma` on a raw universe).
const RULES: &str = "
    src(X), not excl(X) -> mid(X).
    mid(X) -> out(X).
    pick(X), not flop(X) -> flip(X).
    pick(X), not flip(X) -> flop(X).
";

fn config() -> FanoutConfig {
    FanoutConfig {
        groups: GROUPS,
        recursive_fraction: RECURSIVE_FRACTION,
        seed: 2013,
    }
}

fn sample_count() -> usize {
    std::env::var("WFDL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(30)
}

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// The fanout EDB through the typed façade path: `src(cᵢ)` for every
/// group, `pick(cᵢ)` for the recursive fraction — same shape as
/// `fanout_database` builds on a raw universe.
fn facade_batch(universe: &mut Universe, cfg: &FanoutConfig) -> FactBatch {
    let recursive = (cfg.groups as f64 * cfg.recursive_fraction) as usize;
    let mut batch = FactBatch::new();
    {
        let mut src = batch.relation(universe, "src", 1).expect("src/1");
        for i in 0..cfg.groups {
            src.push(&[format!("c{i}").as_str()]).expect("row");
        }
    }
    {
        let mut pick = batch.relation(universe, "pick", 1).expect("pick/1");
        for i in 0..recursive {
            pick.push(&[format!("c{i}").as_str()]).expect("row");
        }
    }
    batch
}

struct EngineLeg {
    full_ns: Vec<u64>,
    sliced_ns: Vec<u64>,
    preds_in_slice: usize,
    components_in_slice: usize,
    components_total: usize,
}

/// Engine-level comparison on a raw universe (typed sigma, no parsing).
fn run_engine_leg(samples: usize) -> EngineLeg {
    let options = WfsOptions::unbounded();
    let budget = SolveBudget::unlimited();
    let mut full_ns = Vec::with_capacity(samples);
    let mut sliced_ns = Vec::with_capacity(samples);
    let mut preds_in_slice = 0;
    let mut components_in_slice = 0;
    let mut components_total = 0;
    for sample in 0..samples {
        let mut u = Universe::new();
        let sigma = fanout_sigma(&mut u);
        let db = fanout_database(&mut u, &config());
        let goal = u.lookup_pred(GOAL_PRED).expect("goal pred interned");
        let slice = ProgramSlice::compute(u.num_preds(), &sigma, &[goal]);
        preds_in_slice = slice.preds_in_slice;
        components_in_slice = slice.components_in_slice;
        components_total = slice.components_total;

        let mut u_sliced = u.clone();
        let start = Instant::now();
        let sliced = wfdatalog::wfs::solve_sliced_packaged_budgeted(
            &mut u_sliced,
            &db,
            &sigma,
            options,
            &[],
            &budget,
            &slice.pred_mask,
            None,
        );
        sliced_ns.push(start.elapsed().as_nanos() as u64);

        let start = Instant::now();
        let full = wfdatalog::wfs::solve_budgeted(&mut u, &db, &sigma, options, &budget);
        full_ns.push(start.elapsed().as_nanos() as u64);

        if sample == 0 {
            // Same number of undefined goal-atoms in both models: the
            // slice preserves every verdict over in-slice predicates
            // (each flip/flop pair is a genuine unfounded loop).
            let count_goal = |u: &Universe, m: &wfdatalog::wfs::WellFoundedModel| {
                m.segment
                    .atoms()
                    .iter()
                    .filter(|sa| {
                        u.atoms.pred(sa.atom) == goal
                            && m.value(sa.atom) == wfdatalog::Truth::Unknown
                    })
                    .count()
            };
            let n = count_goal(&u, &full);
            assert!(n > 0, "flip atoms must be undefined");
            assert_eq!(n, count_goal(&u_sliced, &sliced.model));
        }
    }
    EngineLeg {
        full_ns,
        sliced_ns,
        preds_in_slice,
        components_in_slice,
        components_total,
    }
}

struct FacadeLeg {
    full_ns: Vec<u64>,
    sliced_ns: Vec<u64>,
    warm_ns: Vec<u64>,
    warm_reused: usize,
}

/// End-to-end façade comparison: `solve` vs `solve_for` on a fresh
/// knowledge base, plus `solve_for` after a prior full solve (warm memo).
fn run_facade_leg(samples: usize) -> FacadeLeg {
    let cfg = config();
    let mut full_ns = Vec::with_capacity(samples);
    let mut sliced_ns = Vec::with_capacity(samples);
    let mut warm_ns = Vec::with_capacity(samples);
    let mut warm_reused = 0;
    for sample in 0..samples {
        let mut kb = KnowledgeBase::from_source(RULES).expect("rules compile");
        let batch = facade_batch(kb.universe_mut(), &cfg);
        kb.insert(batch).expect("facts load");

        let start = Instant::now();
        let sliced = kb.solve_for(QUERY).expect("sliced solve");
        sliced_ns.push(start.elapsed().as_nanos() as u64);
        assert!(sliced.solve_stats().sliced);

        let start = Instant::now();
        let full = kb.solve();
        full_ns.push(start.elapsed().as_nanos() as u64);

        if sample == 0 {
            let pf = full.prepare(QUERY).expect("prepare");
            let ps = sliced.prepare_sliced(QUERY).expect("prepare sliced");
            assert_eq!(full.ask3_prepared(&pf), sliced.ask3_prepared(&ps));
        }

        // Warm leg on a separate knowledge base (`kb`'s sliced-model
        // cache would answer instantly and measure nothing): a full
        // solve fills the component memo, then the first `solve_for`
        // reuses fingerprint-matched slice components.
        let mut kb_warm = KnowledgeBase::from_source(RULES).expect("rules compile");
        let batch = facade_batch(kb_warm.universe_mut(), &cfg);
        kb_warm.insert(batch).expect("facts load");
        kb_warm.solve();
        let start = Instant::now();
        let warm = kb_warm.solve_for(QUERY).expect("warm sliced solve");
        warm_ns.push(start.elapsed().as_nanos() as u64);
        warm_reused = warm.solve_stats().components_reused;
        assert!(warm_reused > 0, "warm slice must reuse memoized components");
    }
    FacadeLeg {
        full_ns,
        sliced_ns,
        warm_ns,
        warm_reused,
    }
}

fn main() {
    let samples = sample_count();
    let engine = run_engine_leg(samples);
    let facade = run_facade_leg(samples);

    let e_full = median(engine.full_ns);
    let e_sliced = median(engine.sliced_ns);
    let e_speedup = e_full as f64 / e_sliced as f64;
    let f_full = median(facade.full_ns);
    let f_sliced = median(facade.sliced_ns);
    let f_speedup = f_full as f64 / f_sliced as f64;
    let f_warm = median(facade.warm_ns);

    println!(
        "sliced_query/fanout{GROUPS}/engine_full: median {} ({samples} samples)",
        fmt_ns(e_full)
    );
    println!(
        "sliced_query/fanout{GROUPS}/engine_sliced: median {} — {e_speedup:.1}x vs full ({}/{} components in slice)",
        fmt_ns(e_sliced),
        engine.components_in_slice,
        engine.components_total
    );
    println!(
        "sliced_query/fanout{GROUPS}/facade_full: median {} — KnowledgeBase::solve",
        fmt_ns(f_full)
    );
    println!(
        "sliced_query/fanout{GROUPS}/facade_sliced: median {} — {f_speedup:.1}x vs full (solve_for, cold)",
        fmt_ns(f_sliced)
    );
    println!(
        "sliced_query/fanout{GROUPS}/facade_sliced_warm: median {} — after a full solve ({} components reused)",
        fmt_ns(f_warm),
        facade.warm_reused
    );

    let mut json = String::from("{\n");
    writeln!(json, "  \"samples\": {samples},").unwrap();
    writeln!(json, "  \"workload\": \"fanout{GROUPS}_one_branch\",").unwrap();
    writeln!(json, "  \"query\": \"{}\",", QUERY.replace('"', "\\\"")).unwrap();
    writeln!(json, "  \"preds_in_slice\": {},", engine.preds_in_slice).unwrap();
    writeln!(
        json,
        "  \"components_in_slice\": {},",
        engine.components_in_slice
    )
    .unwrap();
    writeln!(json, "  \"components_total\": {},", engine.components_total).unwrap();
    writeln!(json, "  \"engine_full_ns\": {e_full},").unwrap();
    writeln!(json, "  \"engine_sliced_ns\": {e_sliced},").unwrap();
    writeln!(json, "  \"engine_speedup\": {e_speedup:.2},").unwrap();
    writeln!(json, "  \"facade_full_ns\": {f_full},").unwrap();
    writeln!(json, "  \"facade_sliced_ns\": {f_sliced},").unwrap();
    writeln!(json, "  \"facade_speedup\": {f_speedup:.2},").unwrap();
    writeln!(json, "  \"facade_sliced_warm_ns\": {f_warm}").unwrap();
    json.push_str("}\n");

    wfdl_bench::write_bench_json("BENCH_sliced.json", &json);
}
