//! Delta-aware re-solve: full recompute vs incremental solve after a 1%
//! fact delta on the Example 4 chain workload.
//!
//! The scenario the redesign targets: a knowledge base with a stable rule
//! set and a large, growing extensional database. Per sample we
//!
//! 1. load `SEEDS` chain seeds and solve (untimed warm model);
//! 2. insert a ~1% delta of fresh seeds through the **typed** path
//!    ([`wfdatalog::FactBatch`] / `RelationWriter` — no parser);
//! 3. time the **incremental** re-solve (`solve_resumed`: chase resumed
//!    from the previous frontier + per-component verdict reuse) against a
//!    **full** recompute over the union database.
//!
//! Both the engine-level comparison (`wfdl_wfs::solve_resumed` vs
//! `wfdl_wfs::solve`) and the end-to-end façade comparison
//! (`KnowledgeBase::solve`, which additionally re-packages the snapshot
//! and indexes) are reported. Output mirrors the other benches:
//! human-readable medians on stdout, machine-readable
//! `BENCH_incremental.json` (override with `WFDL_BENCH_JSON`, sample
//! count with `WFDL_BENCH_SAMPLES`).

use std::fmt::Write as _;
use std::time::Instant;
use wfdatalog::{FactBatch, KnowledgeBase, Universe, WfsOptions};
use wfdl_gen::{chain_database, example4_sigma};

const SEEDS: usize = 256;
const DEPTH: u32 = 8;

/// Example 4's Σ as surface text, for the façade leg (the engine leg uses
/// the typed `example4_sigma` on a raw universe).
const RULES: &str = r#"
    R(X,Y,Z) -> R(X,Z,f(X,Y,Z)).
    R(X,Y,Z), P(X,Y), not Q(Z) -> P(X,Z).
    R(X,Y,Z), not P(X,Y) -> Q(Z).
    R(X,Y,Z), not P(X,Z) -> S(X).
    P(X,Y), not S(X) -> T(X).
"#;

fn delta_count() -> usize {
    (SEEDS / 100).max(1)
}

fn sample_count() -> usize {
    std::env::var("WFDL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(30)
}

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Seed facts `{R(cᵢ,cᵢ,dᵢ), P(cᵢ,cᵢ)}` for `range`, via the typed path.
fn seed_batch(universe: &mut Universe, range: std::ops::Range<usize>) -> FactBatch {
    let mut batch = FactBatch::new();
    {
        let mut r = batch.relation(universe, "R", 3).expect("R/3");
        for i in range.clone() {
            let (c, d) = (format!("c{i}"), format!("d{i}"));
            r.push(&[c.as_str(), c.as_str(), d.as_str()]).expect("row");
        }
    }
    {
        let mut p = batch.relation(universe, "P", 2).expect("P/2");
        for i in range {
            let c = format!("c{i}");
            p.push(&[c.as_str(), c.as_str()]).expect("row");
        }
    }
    batch
}

struct EngineLeg {
    full_ns: Vec<u64>,
    inc_ns: Vec<u64>,
    components_reused: usize,
    components: usize,
}

/// Engine-level comparison on a raw universe (typed sigma, no parsing).
fn run_engine_leg(samples: usize) -> EngineLeg {
    let options = WfsOptions::depth(DEPTH);
    let delta_n = delta_count();
    let mut full_ns = Vec::with_capacity(samples);
    let mut inc_ns = Vec::with_capacity(samples);
    let mut components_reused = 0;
    let mut components = 0;
    for sample in 0..samples {
        let mut u = Universe::new();
        let sigma = example4_sigma(&mut u);
        let base = chain_database(&mut u, SEEDS);
        let prev = wfdatalog::wfs::solve(&mut u, &base, &sigma, options);

        let delta = seed_batch(&mut u, SEEDS..SEEDS + delta_n);
        let mut union_db = base.clone();
        for &f in delta.atoms() {
            union_db.insert(&u, f).expect("delta fact is ground");
        }

        let start = Instant::now();
        let (inc_model, stats) =
            wfdatalog::wfs::solve_resumed(&mut u, &prev, &sigma, delta.atoms(), options)
                .expect("resumable");
        inc_ns.push(start.elapsed().as_nanos() as u64);
        assert!(stats.incremental);
        assert!(
            stats.components_reused > 0,
            "chain seeds are independent: untouched components must be reused"
        );
        components_reused = stats.components_reused;

        let start = Instant::now();
        let full_model = wfdatalog::wfs::solve(&mut u, &union_db, &sigma, options);
        full_ns.push(start.elapsed().as_nanos() as u64);
        components = full_model.component_stats().map_or(0, |s| s.components);

        if sample == 0 {
            assert_eq!(
                full_model.counts(),
                inc_model.counts(),
                "incremental and full models must agree"
            );
        }
    }
    EngineLeg {
        full_ns,
        inc_ns,
        components_reused,
        components,
    }
}

/// End-to-end façade comparison: `KnowledgeBase::solve` after `insert`
/// (includes snapshot + index re-packaging) vs a fresh build-and-solve.
fn run_facade_leg(samples: usize) -> (Vec<u64>, Vec<u64>) {
    let delta_n = delta_count();
    let mut full_ns = Vec::with_capacity(samples);
    let mut inc_ns = Vec::with_capacity(samples);
    for sample in 0..samples {
        let mut kb = KnowledgeBase::from_source(RULES)
            .expect("rules compile")
            .with_depth(DEPTH);
        let base = seed_batch(kb.universe_mut(), 0..SEEDS);
        kb.insert(base).expect("base loads");
        let first = kb.solve();
        let delta = seed_batch(kb.universe_mut(), SEEDS..SEEDS + delta_n);
        kb.insert(delta).expect("delta loads");
        let start = Instant::now();
        let second = kb.solve();
        inc_ns.push(start.elapsed().as_nanos() as u64);
        assert!(second.solve_stats().incremental);
        drop(first);

        let mut kb_full = KnowledgeBase::from_source(RULES)
            .expect("rules compile")
            .with_depth(DEPTH);
        let all = seed_batch(kb_full.universe_mut(), 0..SEEDS + delta_n);
        kb_full.insert(all).expect("union loads");
        let start = Instant::now();
        let reference = kb_full.solve();
        full_ns.push(start.elapsed().as_nanos() as u64);
        if sample == 0 {
            assert_eq!(
                reference.render_true(),
                second.render_true(),
                "façade incremental model must agree with scratch"
            );
        }
    }
    (full_ns, inc_ns)
}

fn main() {
    let samples = sample_count();
    let delta_n = delta_count();

    let engine = run_engine_leg(samples);
    let (facade_full, facade_inc) = run_facade_leg(samples);

    let full_m = median(engine.full_ns);
    let inc_m = median(engine.inc_ns);
    let speedup = full_m as f64 / inc_m as f64;
    let f_full_m = median(facade_full);
    let f_inc_m = median(facade_inc);
    let f_speedup = f_full_m as f64 / f_inc_m as f64;

    println!(
        "incremental_update/chain{SEEDS}_depth{DEPTH}/full_solve: median {} ({samples} samples)",
        fmt_ns(full_m)
    );
    println!(
        "incremental_update/chain{SEEDS}_depth{DEPTH}/incremental_solve: median {} — {speedup:.1}x vs full ({} of {} components reused)",
        fmt_ns(inc_m),
        engine.components_reused,
        engine.components
    );
    println!(
        "incremental_update/facade/full: median {} — fresh KnowledgeBase, load + solve",
        fmt_ns(f_full_m)
    );
    println!(
        "incremental_update/facade/incremental: median {} — {f_speedup:.1}x vs full (incl. snapshot repackaging)",
        fmt_ns(f_inc_m)
    );

    let mut json = String::from("{\n");
    writeln!(json, "  \"samples\": {samples},").unwrap();
    writeln!(json, "  \"workload\": \"chain{SEEDS}_depth{DEPTH}\",").unwrap();
    writeln!(json, "  \"base_facts\": {},", SEEDS * 2).unwrap();
    writeln!(json, "  \"delta_facts\": {},", delta_n * 2).unwrap();
    writeln!(json, "  \"full_solve_ns\": {full_m},").unwrap();
    writeln!(json, "  \"incremental_solve_ns\": {inc_m},").unwrap();
    writeln!(json, "  \"incremental_speedup\": {speedup:.2},").unwrap();
    writeln!(json, "  \"components_total\": {},", engine.components).unwrap();
    writeln!(
        json,
        "  \"components_reused\": {},",
        engine.components_reused
    )
    .unwrap();
    writeln!(json, "  \"facade_full_ns\": {f_full_m},").unwrap();
    writeln!(json, "  \"facade_incremental_ns\": {f_inc_m},").unwrap();
    writeln!(json, "  \"facade_speedup\": {f_speedup:.2}").unwrap();
    json.push_str("}\n");

    wfdl_bench::write_bench_json("BENCH_incremental.json", &json);
}
