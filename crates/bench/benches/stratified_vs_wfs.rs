//! E8 — stratified evaluation (the [1] baseline) vs the full WFS engine on
//! stratified workloads; the models coincide, the perfect-model evaluation
//! skips the unfounded-set machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfdl_core::Universe;
use wfdl_gen::{random_database, random_stratified_program, RandomConfig, RandomDbConfig};
use wfdl_wfs::{perfect_model, solve, stratify, WfsOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("stratified_vs_wfs");
    group.sample_size(10);

    let mut u = Universe::new();
    let w = random_stratified_program(
        &mut u,
        &RandomConfig {
            seed: 2,
            num_rules: 16,
            num_preds: 8,
            negation_prob: 0.6,
            existential_prob: 0.0,
            ..Default::default()
        },
        3,
    );
    let db = random_database(
        &mut u,
        &w,
        &RandomDbConfig {
            num_constants: 16,
            num_facts: 64,
            seed: 9,
        },
    );
    let strat = stratify(&w.sigma).expect("stratified");
    let model = solve(&mut u, &db, &w.sigma, WfsOptions::unbounded());

    group.bench_with_input(BenchmarkId::new("engine", "stratified"), &(), |b, _| {
        b.iter(|| perfect_model(&u, &model.ground, &strat));
    });
    group.bench_with_input(BenchmarkId::new("engine", "wfs"), &(), |b, _| {
        b.iter(|| solve(&mut u, &db, &w.sigma, WfsOptions::unbounded()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
