//! HTTP serving-tier throughput: N keep-alive connections × M prepared
//! queries against a live `wfdatalog::serve` instance, quiet and under
//! ingestion churn.
//!
//! The serving tier exists for the same workload shape as the prepared
//! query path — *reason once, query many times* — but adds the transport
//! and the hot-swap machinery on top. This bench quantifies what that
//! costs and that it scales:
//!
//! * **serial roundtrips** — one connection, one query per request, quiet
//!   server: the end-to-end HTTP tax over the in-process prepared path
//!   (this is the gated leg: serial, machine-shape independent);
//! * **connection scaling** — N connections each sending the full batch
//!   concurrently (the `threads != 1` legs are skipped by the bench gate:
//!   they measure the runner's core count as much as the code);
//! * **ingestion churn** — 4 connections querying while `/ingest`
//!   batches drive incremental re-solves and model hot-swaps; reported as
//!   queries/sec (ungated: churn throughput is load-dependent by design).
//!
//! Output mirrors the other benches: human-readable medians on stdout,
//! machine-readable `BENCH_serve.json` (path override `WFDL_BENCH_JSON`,
//! sample count `WFDL_BENCH_SAMPLES`).

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;
use wfdatalog::serve::{start, RunningServer, ServeOptions};
use wfdatalog::KnowledgeBase;

/// Length of the `edge` chain in the win/move program.
const CHAIN: usize = 512;
/// Requests per connection per sample (one query per request).
const BATCH: usize = 200;
/// Connection counts for the scaling legs.
const CONNS: [usize; 3] = [1, 2, 4];
/// Ingest batches driven during the churn leg.
const CHURN_INGESTS: usize = 8;

fn sample_count() -> usize {
    std::env::var("WFDL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(30)
}

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// The win/move game on an `edge` chain: alternating verdicts, all three
/// truth values once the churn triangles (3-cycles → `unknown`) land.
fn program() -> String {
    let mut src = String::with_capacity(CHAIN * 16);
    for i in 0..CHAIN {
        let _ = writeln!(src, "edge(n{i},n{}).", i + 1);
    }
    src.push_str("edge(X,Y), not win(Y) -> win(X).\n");
    src
}

/// One persistent keep-alive connection speaking just enough HTTP/1.1.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Conn {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    /// Sends one POST and reads the (Content-Length framed) response.
    fn post(&mut self, path: &str, body: &str) -> (u16, String) {
        let req = format!(
            "POST {path} HTTP/1.1\r\nHost: b\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(req.as_bytes()).expect("send");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            line.clear();
            self.reader.read_line(&mut line).expect("header line");
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some(v) = trimmed
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v.parse().expect("content-length value");
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("UTF-8 body"))
    }
}

fn start_server() -> RunningServer {
    let kb = KnowledgeBase::from_source(&program()).expect("program compiles");
    start(
        kb,
        ServeOptions {
            workers: 4,
            ..ServeOptions::default()
        },
    )
    .expect("server starts")
}

/// One batch: `BATCH` single-query requests over one connection,
/// returning elapsed nanoseconds and a fingerprint of the verdicts.
fn run_batch(addr: SocketAddr) -> (u64, usize) {
    let mut conn = Conn::open(addr);
    let start = Instant::now();
    let mut fingerprint = 0usize;
    for i in 0..BATCH {
        let query = format!("?- win(n{}).", i % CHAIN);
        let (status, body) = conn.post("/query", &query);
        assert_eq!(status, 200, "{body}");
        fingerprint += body.contains("\"truth\":\"true\"") as usize;
    }
    (start.elapsed().as_nanos() as u64, fingerprint)
}

fn main() {
    let samples = sample_count();
    let server = start_server();
    let addr = server.addr();

    // Warm-up: first contact pays the lazy possible-atom index.
    let (_, warm_fp) = run_batch(addr);

    // Connection-scaling legs on a quiet server (no ingests in flight).
    let mut legs: Vec<(usize, Vec<u64>)> = Vec::new();
    for &n in &CONNS {
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            let handles: Vec<_> = (0..n)
                .map(|_| std::thread::spawn(move || run_batch(addr)))
                .collect();
            for h in handles {
                let (_, fp) = h.join().expect("client thread");
                assert_eq!(fp, warm_fp, "quiet-server verdicts are stable");
            }
            times.push(t0.elapsed().as_nanos() as u64);
        }
        legs.push((n, times));
    }

    // Churn leg: 4 connections querying while ingests re-solve + swap.
    let churn_conns = 4usize;
    let churn_t0 = Instant::now();
    let clients: Vec<_> = (0..churn_conns)
        .map(|_| std::thread::spawn(move || run_batch(addr).0))
        .collect();
    let mut ingest = Conn::open(addr);
    for i in 0..CHURN_INGESTS {
        // A fresh 3-cycle per batch: new constants, so each ingest is an
        // insert-only delta that re-solves incrementally and hot-swaps.
        let batch = format!("edge,c{i}a,c{i}b\nedge,c{i}b,c{i}c\nedge,c{i}c,c{i}a\n");
        let (status, body) = ingest.post("/ingest", &batch);
        assert_eq!(status, 200, "{body}");
    }
    for c in clients {
        c.join().expect("churn client");
    }
    let churn_ns = churn_t0.elapsed().as_nanos() as u64;
    let churn_qps = (churn_conns * BATCH) as f64 / (churn_ns as f64 / 1e9);
    let final_epoch = server.pin_model().0;
    server.shutdown();

    // Report.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    let _ = writeln!(json, "  \"workload\": \"winchain{CHAIN}_http\",");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    json.push_str("  \"connections\": [\n");
    let mut qps1 = 0f64;
    for (i, (n, times)) in legs.iter().enumerate() {
        let m = median(times.clone());
        let qps = (*n * BATCH) as f64 / (m as f64 / 1e9);
        if *n == 1 {
            qps1 = qps;
        }
        let scaling = if qps1 > 0.0 { qps / qps1 } else { 0.0 };
        println!(
            "serve_load/connections{n}: median {} — {qps:.0} queries/sec ({scaling:.2}x vs 1 connection)",
            fmt_ns(m)
        );
        let _ = writeln!(
            json,
            "    {{\"threads\": {n}, \"median_ns\": {m}, \"queries_per_sec\": {qps:.0}, \"scaling\": {scaling:.2}}}{}",
            if i + 1 == legs.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    println!(
        "serve_load/churn: {} for {} requests across {churn_conns} connections + {CHURN_INGESTS} ingests — {churn_qps:.0} queries/sec, final epoch {final_epoch}",
        fmt_ns(churn_ns),
        churn_conns * BATCH
    );
    let _ = writeln!(
        json,
        "  \"churn\": {{\"connections\": {churn_conns}, \"requests\": {}, \"ingests\": {CHURN_INGESTS}, \"queries_per_sec\": {churn_qps:.0}, \"final_epoch\": {final_epoch}}}",
        churn_conns * BATCH
    );
    json.push_str("}\n");

    wfdl_bench::write_bench_json("BENCH_serve.json", &json);
}
