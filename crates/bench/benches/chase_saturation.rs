//! E1-adjacent kernel: guarded chase saturation (condensed segments) and
//! the explicit-forest unfolding that renders the Example 6 figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfdl_chase::{paper, ChaseBudget, ChaseSegment, ExplicitForest};
use wfdl_core::Universe;
use wfdl_gen::{chain_database, example4_sigma};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase_saturation");
    group.sample_size(10);

    for depth in [8u32, 16, 32] {
        let mut u = Universe::new();
        let (db, sigma) = paper::example4(&mut u);
        let _ = ChaseSegment::build(&mut u, &db, &sigma, ChaseBudget::depth(depth));
        group.bench_with_input(
            BenchmarkId::new("example4_depth", depth),
            &depth,
            |b, &d| {
                b.iter(|| ChaseSegment::build(&mut u, &db, &sigma, ChaseBudget::depth(d)));
            },
        );
    }

    {
        let mut u = Universe::new();
        let sigma = example4_sigma(&mut u);
        let db = chain_database(&mut u, 128);
        let _ = ChaseSegment::build(&mut u, &db, &sigma, ChaseBudget::depth(6));
        group.bench_with_input(BenchmarkId::new("chains", 128), &(), |b, _| {
            b.iter(|| ChaseSegment::build(&mut u, &db, &sigma, ChaseBudget::depth(6)));
        });
    }

    {
        let mut u = Universe::new();
        let (db, sigma) = paper::example4(&mut u);
        let seg = ChaseSegment::build(&mut u, &db, &sigma, ChaseBudget::depth(8));
        group.bench_with_input(BenchmarkId::new("explicit_unfold", 8), &(), |b, _| {
            b.iter(|| ExplicitForest::unfold(&seg, 8, 1_000_000));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
