//! E5 — Theorem 14: NBCQ answering over the well-founded model, scaling
//! the database (PTIME data complexity) and the number of query literals.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfdl_core::Universe;
use wfdl_gen::{chain_database, example4_sigma};
use wfdl_query::{answers, Nbcq, QTerm, QVar, QueryAtom};
use wfdl_wfs::{solve, WfsOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm14_nbcq");
    group.sample_size(10);
    for seeds in [16usize, 64, 256] {
        let mut u = Universe::new();
        let sigma = example4_sigma(&mut u);
        let db = chain_database(&mut u, seeds);
        let model = solve(&mut u, &db, &sigma, WfsOptions::depth(6));
        let p = u.lookup_pred("P").unwrap();
        let s = u.lookup_pred("S").unwrap();
        // ∃X,Y P(X,Y) ∧ ¬S(X)
        let q = Nbcq::boolean(
            &u,
            vec![QueryAtom::new(
                p,
                vec![QTerm::Var(QVar::new(0)), QTerm::Var(QVar::new(1))],
            )],
            vec![QueryAtom::new(s, vec![QTerm::Var(QVar::new(0))])],
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("db", db.len()), &seeds, |b, _| {
            b.iter(|| answers(&u, &model, &q));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
