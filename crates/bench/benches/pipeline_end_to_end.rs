//! End-to-end pipeline benchmark: parse/translate → skolemize → chase →
//! ground → modular solve, phase-attributed.
//!
//! Unlike the engine-only benches, every sample runs the **whole** pipeline
//! on a fresh universe, so the numbers include interning, chase saturation
//! and ground-program extraction — the phases that dominate end-to-end
//! latency on ontological workloads. Each phase is timed separately within
//! the same run, so a chase-saturation speedup is attributable without
//! cross-bench guesswork.
//!
//! Output:
//! * human-readable per-phase medians on stdout (same shape as the
//!   criterion stub's reports);
//! * machine-readable medians in `BENCH_pipeline.json` (override the path
//!   with `WFDL_BENCH_JSON`, the sample count with `WFDL_BENCH_SAMPLES`),
//!   so future PRs have a perf trajectory to compare against.

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use wfdl_analyze::{analyze, AnalysisInput};
use wfdl_chase::{ChaseBudget, ChaseSegment};
use wfdl_core::Universe;
use wfdl_gen::{
    employment_ontology, fanout_database, fanout_sigma, random_ontology, EmploymentConfig,
    FanoutConfig, OntologyConfig,
};
use wfdl_ontology::Ontology;
use wfdl_wfs::ModularEngine;

const PHASES: [&str; 5] = ["frontend", "skolemize", "chase", "ground", "solve"];

/// One pipeline sample: wall-clock per phase, in [`PHASES`] order.
struct Sample {
    phase_ns: [u64; PHASES.len()],
}

impl Sample {
    fn total_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }
}

/// A workload's collected samples plus size counters from the last run.
struct Outcome {
    name: &'static str,
    samples: Vec<Sample>,
    atoms: usize,
    instances: usize,
    ground_rules: usize,
}

fn sample_count() -> usize {
    std::env::var("WFDL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(30)
}

fn median_ns(samples: &[Sample], extract: impl Fn(&Sample) -> u64) -> u64 {
    let mut v: Vec<u64> = samples.iter().map(extract).collect();
    v.sort_unstable();
    v[v.len() / 2]
}

fn fmt_ns(ns: u64) -> String {
    let d = Duration::from_nanos(ns);
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", d.as_secs_f64())
    }
}

fn time<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let start = Instant::now();
    let out = std::hint::black_box(f());
    (out, start.elapsed().as_nanos() as u64)
}

/// The scaled Example 4 chain workload as surface syntax, so the sample
/// pays for a real parse (the other workloads enter via the DL-Lite
/// translation instead).
fn chain_source(num_seeds: usize) -> String {
    let mut src = String::new();
    for i in 0..num_seeds {
        writeln!(src, "r(c{i}, c{i}, d{i}).").unwrap();
        writeln!(src, "p(c{i}, c{i}).").unwrap();
    }
    src.push_str(
        "r(X, Y, Z) -> r(X, Z, f(X, Y, Z)).\n\
         r(X, Y, Z), p(X, Y), not q(Z) -> p(X, Z).\n\
         r(X, Y, Z), not p(X, Y) -> q(Z).\n\
         r(X, Y, Z), not p(X, Z) -> s(X).\n\
         p(X, Y), not s(X) -> t(X).\n",
    );
    src
}

/// Runs one parse-entry pipeline sample and returns phase timings plus
/// result sizes.
fn run_source_sample(src: &str, budget: ChaseBudget) -> (Sample, usize, usize, usize) {
    let mut u = Universe::new();
    let (lowered, parse_ns) = time(|| wfdl_syntax::load(&mut u, src).expect("valid source"));
    let (sigma, skolem_ns) = time(|| {
        lowered
            .skolem_program(&mut u)
            .expect("skolemizable program")
    });
    let (seg, chase_ns) = time(|| ChaseSegment::build(&mut u, &lowered.database, &sigma, budget));
    let (ground, ground_ns) = time(|| seg.to_ground_program());
    let (_res, solve_ns) = time(|| ModularEngine::new(&ground).solve());
    (
        Sample {
            phase_ns: [parse_ns, skolem_ns, chase_ns, ground_ns, solve_ns],
        },
        seg.atoms().len(),
        seg.num_instances(),
        ground.num_rules(),
    )
}

/// Runs one ontology-entry pipeline sample (translation plays the frontend
/// role that parsing plays for textual workloads).
fn run_ontology_sample(onto: &Ontology, budget: ChaseBudget) -> (Sample, usize, usize, usize) {
    let mut u = Universe::new();
    let (translated, translate_ns) =
        time(|| wfdl_ontology::translate(&mut u, onto).expect("translation never fails"));
    let (sigma, skolem_ns) = time(|| {
        let (sigma, _viols) =
            wfdl_wfs::lower_with_constraints(&mut u, &translated.program).expect("lowerable");
        sigma
    });
    let (seg, chase_ns) =
        time(|| ChaseSegment::build(&mut u, &translated.database, &sigma, budget));
    let (ground, ground_ns) = time(|| seg.to_ground_program());
    let (_res, solve_ns) = time(|| ModularEngine::new(&ground).solve());
    (
        Sample {
            phase_ns: [translate_ns, skolem_ns, chase_ns, ground_ns, solve_ns],
        },
        seg.atoms().len(),
        seg.num_instances(),
        ground.num_rules(),
    )
}

fn collect(
    name: &'static str,
    samples: usize,
    mut one: impl FnMut() -> (Sample, usize, usize, usize),
) -> Outcome {
    // One untimed warm-up run.
    let _ = one();
    let mut out = Outcome {
        name,
        samples: Vec::with_capacity(samples),
        atoms: 0,
        instances: 0,
        ground_rules: 0,
    };
    for _ in 0..samples {
        let (s, atoms, instances, rules) = one();
        out.samples.push(s);
        out.atoms = atoms;
        out.instances = instances;
        out.ground_rules = rules;
    }
    out
}

/// Measures what `wfdl lint` would add to the compile phase on the widest
/// generated workload: build the fanout-8192 program + database (the
/// compile-side work the analyzer rides on), then run the analyzer over
/// the same lowered program. The analyzer is O(program) — four rules here
/// — so its share must stay far under the 5% acceptance ceiling no matter
/// how many facts the workload carries.
fn lint_overhead(samples: usize) -> String {
    let mut compile: Vec<u64> = Vec::with_capacity(samples);
    let mut lint: Vec<u64> = Vec::with_capacity(samples);
    let cfg = FanoutConfig {
        groups: 8192,
        recursive_fraction: 0.25,
        seed: 2013,
    };
    for i in 0..=samples {
        let mut u = Universe::new();
        let ((sigma, db), compile_ns) = time(|| {
            let sigma = fanout_sigma(&mut u);
            let db = fanout_database(&mut u, &cfg);
            (sigma, db)
        });
        // The analyzer path as `KnowledgeBase::analyze` runs it: collect
        // the EDB predicate set from the fact store, then analyze.
        let (report, lint_ns) = time(|| {
            let mut seen = vec![false; u.num_preds()];
            let mut edb_preds = Vec::new();
            for &f in db.facts() {
                let p = u.atoms.pred(f);
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    edb_preds.push(p);
                }
            }
            analyze(&AnalysisInput {
                universe: &u,
                program: &sigma,
                edb_preds: &edb_preds,
                queried_preds: &[],
            })
        });
        assert!(
            report
                .diagnostics
                .iter()
                .all(|d| d.severity != wfdl_analyze::Severity::Error),
            "fanout workload must lint clean"
        );
        // Iteration 0 is the untimed warm-up.
        if i > 0 {
            compile.push(compile_ns);
            lint.push(lint_ns);
        }
    }
    let med = |v: &mut Vec<u64>| -> u64 {
        v.sort_unstable();
        v[v.len() / 2]
    };
    let compile_med = med(&mut compile);
    let lint_med = med(&mut lint);
    let pct = lint_med as f64 * 100.0 / compile_med.max(1) as f64;
    println!(
        "pipeline_end_to_end/lint_overhead/fanout8192: compile median {}, lint median {} ({pct:.2}% overhead, {samples} samples)",
        fmt_ns(compile_med),
        fmt_ns(lint_med),
    );
    assert!(
        pct < 5.0,
        "lint overhead {pct:.2}% breaches the 5% compile-phase ceiling"
    );
    format!(
        "  \"lint_overhead\": {{\"workload\": \"fanout8192\", \"compile_ns\": {compile_med}, \"lint_ns\": {lint_med}, \"overhead_pct\": {pct:.2}}},\n"
    )
}

fn report(outcomes: &[Outcome], samples: usize, lint_json: &str) {
    let mut json = String::from("{\n");
    writeln!(json, "  \"samples\": {samples},").unwrap();
    json.push_str(lint_json);
    json.push_str("  \"workloads\": [\n");
    for (wi, o) in outcomes.iter().enumerate() {
        println!(
            "pipeline_end_to_end/{}: {} atoms, {} instances, {} ground rules",
            o.name, o.atoms, o.instances, o.ground_rules
        );
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", o.name).unwrap();
        writeln!(json, "      \"atoms\": {},", o.atoms).unwrap();
        writeln!(json, "      \"instances\": {},", o.instances).unwrap();
        writeln!(json, "      \"ground_rules\": {},", o.ground_rules).unwrap();
        json.push_str("      \"median_ns\": {");
        for (pi, phase) in PHASES.iter().enumerate() {
            let m = median_ns(&o.samples, |s| s.phase_ns[pi]);
            println!(
                "pipeline_end_to_end/{}/{}: median {} ({} samples)",
                o.name,
                phase,
                fmt_ns(m),
                o.samples.len()
            );
            if pi > 0 {
                json.push_str(", ");
            }
            write!(json, "\"{phase}\": {m}").unwrap();
        }
        let total = median_ns(&o.samples, Sample::total_ns);
        println!(
            "pipeline_end_to_end/{}/total: median {} ({} samples)",
            o.name,
            fmt_ns(total),
            o.samples.len()
        );
        write!(json, ", \"total\": {total}}}").unwrap();
        json.push('\n');
        if wi + 1 == outcomes.len() {
            json.push_str("    }\n");
        } else {
            json.push_str("    },\n");
        }
    }
    json.push_str("  ]\n}\n");

    wfdl_bench::write_bench_json("BENCH_pipeline.json", &json);
}

fn main() {
    let samples = sample_count();

    let chain_src = chain_source(192);
    let ontogen_cfg = OntologyConfig {
        num_concepts: 14,
        num_roles: 7,
        num_axioms: 60,
        num_role_axioms: 10,
        negation_prob: 0.4,
        exists_prob: 0.4,
        bottom_prob: 0.05,
        num_individuals: 48,
        num_assertions: 360,
        seed: 2013,
    };
    let ontogen = random_ontology(&ontogen_cfg);
    let employment = employment_ontology(&EmploymentConfig {
        num_persons: 384,
        employed_fraction: 0.5,
        seed: 2013,
    });

    let outcomes = vec![
        collect("chain", samples, || {
            run_source_sample(&chain_src, ChaseBudget::depth(8))
        }),
        collect("ontogen", samples, || {
            run_ontology_sample(&ontogen, ChaseBudget::depth(4))
        }),
        collect("employment", samples, || {
            run_ontology_sample(&employment, ChaseBudget::depth(6))
        }),
    ];

    let lint_json = lint_overhead(samples);
    report(&outcomes, samples, &lint_json);
}
