//! E2 — Example 9: the `Ŵ_P` forward-proof engine on growing segments of
//! the paper's running example (the finite shadow of the transfinite
//! iteration `Ŵ_{P,ω+2}`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfdl_chase::{paper, ChaseBudget, ChaseSegment};
use wfdl_core::Universe;
use wfdl_wfs::ForwardEngine;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ex9_stages");
    group.sample_size(10);
    for depth in [6u32, 12, 24] {
        let mut u = Universe::new();
        let (db, sigma) = paper::example4(&mut u);
        let seg = ChaseSegment::build(&mut u, &db, &sigma, ChaseBudget::depth(depth));
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| ForwardEngine::new(&seg).solve());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
