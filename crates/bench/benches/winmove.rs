//! E9 — win–move scaling: exact three-valued well-founded models on random
//! game graphs of growing size (PTIME data complexity, experiment E9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfdl_core::Universe;
use wfdl_gen::{winmove_database, winmove_sigma, WinMoveConfig};
use wfdl_wfs::{solve, WfsOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("winmove");
    group.sample_size(10);
    for nodes in [128usize, 512, 2048] {
        let mut u = Universe::new();
        let sigma = winmove_sigma(&mut u);
        let db = winmove_database(
            &mut u,
            &WinMoveConfig {
                nodes,
                out_degree: 2.0,
                forward_bias: 0.5,
                seed: 17,
            },
        );
        let _ = solve(&mut u, &db, &sigma, WfsOptions::unbounded());
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| solve(&mut u, &db, &sigma, WfsOptions::unbounded()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
