//! Parallel modular solve: serial vs 2/4/8 worker threads, engine time
//! only (the ground program is built once per workload).
//!
//! Workloads, chosen to span the shapes the wavefront scheduler meets:
//!
//! * `winmove2048` — the win–move game on a 2048-node random graph with
//!   draw cycles: a deep condensation with recursive components scattered
//!   through it;
//! * `chain256` — the Example 4 chain workload at 256 seeds, depth 8:
//!   thousands of independent per-seed cones (the incremental bench's
//!   base workload);
//! * `fanout8192` — `wfdl_gen::fanout`'s 8192 independent shallow groups:
//!   tiny components in huge wavefronts, built specifically to expose
//!   scheduling overhead.
//!
//! A fourth leg, `parallel_chase`, times **saturation** rather than
//! evaluation: `ChaseSegment::build` over the chain-256 workload at the
//! same thread counts, with a fresh universe per sample (the chase
//! interns into its universe, and the sharded match phase is specified
//! to be bit-identical at every worker count — asserted before timing).
//!
//! Every thread count is asserted to produce the exact serial model
//! before anything is timed. Output mirrors the other benches:
//! human-readable medians on stdout, machine-readable
//! `BENCH_parallel.json` (override with `WFDL_BENCH_JSON`, sample count
//! with `WFDL_BENCH_SAMPLES`). The JSON records
//! `available_parallelism`: on a single-core host the multi-thread legs
//! only measure scheduler overhead — real scaling numbers come from the
//! multicore CI runner, where the bench job asserts `scaling > 1`.

use std::fmt::Write as _;
use std::time::Instant;
use wfdl_chase::{ChaseBudget, ChaseSegment};
use wfdl_core::Universe;
use wfdl_gen::{
    chain_database, example4_sigma, fanout_database, fanout_sigma, winmove_database, winmove_sigma,
    FanoutConfig, WinMoveConfig,
};
use wfdl_storage::GroundProgram;
use wfdl_wfs::{solve, ModularEngine, WfsOptions};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn sample_count() -> usize {
    std::env::var("WFDL_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(30)
}

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

fn winmove_ground(nodes: usize) -> GroundProgram {
    let mut u = Universe::new();
    let sigma = winmove_sigma(&mut u);
    let db = winmove_database(
        &mut u,
        &WinMoveConfig {
            nodes,
            out_degree: 2.0,
            forward_bias: 0.8,
            seed: 3,
        },
    );
    solve(&mut u, &db, &sigma, WfsOptions::unbounded()).ground
}

fn chain_ground(seeds: usize) -> GroundProgram {
    let mut u = Universe::new();
    let sigma = example4_sigma(&mut u);
    let db = chain_database(&mut u, seeds);
    solve(&mut u, &db, &sigma, WfsOptions::depth(8)).ground
}

fn fanout_ground(groups: usize) -> GroundProgram {
    let mut u = Universe::new();
    let sigma = fanout_sigma(&mut u);
    let db = fanout_database(
        &mut u,
        &FanoutConfig {
            groups,
            recursive_fraction: 0.25,
            seed: 2013,
        },
    );
    solve(&mut u, &db, &sigma, WfsOptions::unbounded()).ground
}

struct Leg {
    threads: usize,
    median_ns: u64,
    /// Serial median / this leg's median: the parallel speedup.
    scaling: f64,
}

struct Outcome {
    name: &'static str,
    atoms: usize,
    components: usize,
    wavefronts: usize,
    max_wavefront: usize,
    legs: Vec<Leg>,
}

fn run_workload(name: &'static str, ground: &GroundProgram, samples: usize) -> Outcome {
    // Correctness first: every thread count must reproduce the serial
    // model bit for bit before anything is timed.
    let serial = ModularEngine::new(ground).solve();
    let mut shape = (0usize, 0usize);
    for &t in &THREADS[1..] {
        let par = ModularEngine::new(ground).with_threads(t).solve();
        for &atom in ground.atoms() {
            assert_eq!(
                par.value(atom),
                serial.value(atom),
                "{name}: {t}-thread solve diverged on {atom:?}"
            );
        }
        let stats = par.stats.expect("modular stats");
        shape = (stats.wavefronts, stats.max_wavefront);
    }
    let stats = serial.stats.expect("modular stats");

    let mut legs = Vec::with_capacity(THREADS.len());
    let mut serial_median = 0u64;
    for &t in &THREADS {
        let engine = ModularEngine::new(ground).with_threads(t);
        let _ = engine.solve(); // untimed warm-up per thread count
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            let res = engine.solve();
            times.push(start.elapsed().as_nanos() as u64);
            std::hint::black_box(res);
        }
        let m = median(times);
        if t == 1 {
            serial_median = m;
        }
        let scaling = serial_median as f64 / m as f64;
        println!(
            "parallel_scaling/{name}/threads{t}: median {} — {scaling:.2}x vs serial ({samples} samples)",
            fmt_ns(m)
        );
        legs.push(Leg {
            threads: t,
            median_ns: m,
            scaling,
        });
    }
    Outcome {
        name,
        atoms: ground.num_atoms(),
        components: stats.components,
        wavefronts: shape.0,
        max_wavefront: shape.1,
        legs,
    }
}

struct ChaseOutcome {
    atoms: usize,
    instances: usize,
    legs: Vec<Leg>,
}

/// Times `ChaseSegment::build` (saturation only; universe/database
/// construction is untimed setup) over the chain-256 workload at every
/// thread count. Each sample gets a fresh universe — the deterministic
/// interning order is what makes the runs comparable, and is asserted
/// across thread counts before anything is timed.
fn run_chase_workload(samples: usize) -> ChaseOutcome {
    const SEEDS: usize = 256;
    const DEPTH: u32 = 8;
    let build = |threads: usize| -> (Universe, ChaseSegment) {
        let mut u = Universe::new();
        let sigma = example4_sigma(&mut u);
        let db = chain_database(&mut u, SEEDS);
        let seg = ChaseSegment::build(
            &mut u,
            &db,
            &sigma,
            ChaseBudget::depth(DEPTH).with_threads(threads),
        );
        (u, seg)
    };

    let (u1, s1) = build(1);
    for &t in &THREADS[1..] {
        let (u2, s2) = build(t);
        assert_eq!(
            s2.atoms().len(),
            s1.atoms().len(),
            "parallel_chase: {t}-thread saturation changed the atom count"
        );
        for (a2, a1) in s2.atoms().iter().zip(s1.atoms()) {
            assert_eq!(
                (u2.display_atom(a2.atom).to_string(), a2.depth, a2.level),
                (u1.display_atom(a1.atom).to_string(), a1.depth, a1.level),
                "parallel_chase: {t}-thread saturation diverged"
            );
        }
        assert_eq!(
            s2.instance_ids().count(),
            s1.instance_ids().count(),
            "parallel_chase: {t}-thread saturation changed the instance count"
        );
    }

    let mut legs = Vec::with_capacity(THREADS.len());
    let mut serial_median = 0u64;
    for &t in &THREADS {
        let mut times = Vec::with_capacity(samples);
        // First iteration is an untimed warm-up per thread count.
        for i in 0..=samples {
            let mut u = Universe::new();
            let sigma = example4_sigma(&mut u);
            let db = chain_database(&mut u, SEEDS);
            let start = Instant::now();
            let seg = ChaseSegment::build(
                &mut u,
                &db,
                &sigma,
                ChaseBudget::depth(DEPTH).with_threads(t),
            );
            let elapsed = start.elapsed().as_nanos() as u64;
            std::hint::black_box(&seg);
            if i > 0 {
                times.push(elapsed);
            }
        }
        let m = median(times);
        if t == 1 {
            serial_median = m;
        }
        let scaling = serial_median as f64 / m as f64;
        println!(
            "parallel_scaling/parallel_chase/threads{t}: median {} — {scaling:.2}x vs serial ({samples} samples)",
            fmt_ns(m)
        );
        legs.push(Leg {
            threads: t,
            median_ns: m,
            scaling,
        });
    }
    ChaseOutcome {
        atoms: s1.atoms().len(),
        instances: s1.instance_ids().count(),
        legs,
    }
}

fn main() {
    let samples = sample_count();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("parallel_scaling: {cores} core(s) available, {samples} samples");

    let workloads = [
        ("winmove2048", winmove_ground(2048)),
        ("chain256", chain_ground(256)),
        ("fanout8192", fanout_ground(8192)),
    ];
    let outcomes: Vec<Outcome> = workloads
        .iter()
        .map(|(name, g)| run_workload(name, g, samples))
        .collect();
    let chase = run_chase_workload(samples);

    let best = outcomes
        .iter()
        .flat_map(|o| o.legs.iter())
        .chain(chase.legs.iter())
        .map(|l| l.scaling)
        .fold(0.0f64, f64::max);
    println!("parallel_scaling/best_scaling: {best:.2}x");

    let mut json = String::from("{\n");
    writeln!(json, "  \"samples\": {samples},").unwrap();
    writeln!(json, "  \"available_parallelism\": {cores},").unwrap();
    writeln!(json, "  \"best_scaling\": {best:.2},").unwrap();
    writeln!(
        json,
        "  \"chase_threads\": [{}],",
        THREADS.map(|t| t.to_string()).join(", ")
    )
    .unwrap();
    json.push_str("  \"chase\": {\n");
    writeln!(json, "    \"name\": \"parallel_chase\",").unwrap();
    writeln!(json, "    \"atoms\": {},", chase.atoms).unwrap();
    writeln!(json, "    \"instances\": {},", chase.instances).unwrap();
    json.push_str("    \"legs\": [\n");
    for (li, l) in chase.legs.iter().enumerate() {
        writeln!(
            json,
            "      {{\"threads\": {}, \"median_ns\": {}, \"scaling\": {:.2}}}{}",
            l.threads,
            l.median_ns,
            l.scaling,
            if li + 1 == chase.legs.len() { "" } else { "," }
        )
        .unwrap();
    }
    json.push_str("    ]\n  },\n");
    json.push_str("  \"workloads\": [\n");
    for (wi, o) in outcomes.iter().enumerate() {
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", o.name).unwrap();
        writeln!(json, "      \"atoms\": {},", o.atoms).unwrap();
        writeln!(json, "      \"components\": {},", o.components).unwrap();
        writeln!(json, "      \"wavefronts\": {},", o.wavefronts).unwrap();
        writeln!(json, "      \"max_wavefront\": {},", o.max_wavefront).unwrap();
        json.push_str("      \"legs\": [\n");
        for (li, l) in o.legs.iter().enumerate() {
            writeln!(
                json,
                "        {{\"threads\": {}, \"median_ns\": {}, \"scaling\": {:.2}}}{}",
                l.threads,
                l.median_ns,
                l.scaling,
                if li + 1 == o.legs.len() { "" } else { "," }
            )
            .unwrap();
        }
        json.push_str("      ]\n");
        writeln!(
            json,
            "    }}{}",
            if wi + 1 == outcomes.len() { "" } else { "," }
        )
        .unwrap();
    }
    json.push_str("  ]\n}\n");

    wfdl_bench::write_bench_json("BENCH_parallel.json", &json);
}
