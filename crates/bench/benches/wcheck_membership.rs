//! E10 — WCHECK: demand-driven single-atom membership (dependency-cone
//! extraction + cone-local fixpoint) vs solving the whole program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wfdl_core::Universe;
use wfdl_gen::{chain_database, example4_sigma};
use wfdl_wfs::{solve, wcheck, WfsOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("wcheck_membership");
    group.sample_size(10);

    let mut u = Universe::new();
    let sigma = example4_sigma(&mut u);
    let db = chain_database(&mut u, 64);
    let model = solve(&mut u, &db, &sigma, WfsOptions::depth(6));
    let t_pred = u.lookup_pred("T").unwrap();
    let c0 = u.lookup_constant("c0").unwrap();
    let t_atom = u.atoms.lookup(t_pred, &[c0]).unwrap();

    group.bench_with_input(BenchmarkId::new("membership", "decide"), &(), |b, _| {
        b.iter(|| wcheck::decide(&model.ground, t_atom));
    });
    group.bench_with_input(BenchmarkId::new("membership", "global"), &(), |b, _| {
        b.iter(|| solve(&mut u, &db, &sigma, WfsOptions::depth(6)));
    });
    group.bench_with_input(BenchmarkId::new("membership", "certify"), &(), |b, _| {
        b.iter(|| wcheck::certify(&model.segment, &model.result.interp, t_atom));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
