//! `bench-gate` — the CI bench-regression gate.
//!
//! Two modes:
//!
//! * `bench-gate compare --baseline <dir> --current <dir>` walks every
//!   `BENCH_*.json` in the baseline directory, pairs it with the same
//!   filename under the current directory, and compares every
//!   **time-valued** metric (any dotted path with a segment ending in
//!   `_ns`; lower is better). A metric that got more than `--tolerance`
//!   (default 25%) slower *and* lost more than `--min-abs-ns` (default
//!   100µs, to ignore micro-jitter) fails the gate with a per-metric
//!   report. Ratio metrics (speedups, scaling) and multi-thread legs
//!   (`threadsN`, `N != 1`) are ignored here — they are machine-shape
//!   dependent, so comparing them across hosts either fails spuriously
//!   or silently masks regressions.
//! * `bench-gate assert-scaling --file <json> [--min 1.0]` asserts that
//!   the file's best `scaling` value exceeds the floor — the CI-side
//!   check that thread scaling is real on the multicore runner. When the
//!   file records `available_parallelism <= 1` the assertion is skipped
//!   with a warning (a single-core host cannot scale).
//!
//! The JSON "parser" below covers exactly the dialect our benches emit
//! (objects, arrays, strings without exotic escapes, f64 numbers, bools,
//! null) — the workspace builds offline, so no serde.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

// ======================================================================
// Minimal JSON
// ======================================================================

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("{message} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(&format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'"') => out.push('"'),
                        Some(b'/') => out.push('/'),
                        other => {
                            return Err(self.error(&format!("unsupported escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the run up to the next quote or escape whole
                    // (multi-byte safe: UTF-8 continuation bytes never
                    // equal `"` or `\`).
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.error("invalid utf-8"))?,
                    );
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content"));
    }
    Ok(v)
}

// ======================================================================
// Metric extraction
// ======================================================================

/// Flattens a bench JSON into `dotted.path → number`. Array elements are
/// keyed by their `name` or `threads` field when present (stable across
/// reordering), by index otherwise.
fn metrics(json: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    walk(json, String::new(), &mut out);
    out
}

fn walk(json: &Json, path: String, out: &mut BTreeMap<String, f64>) {
    match json {
        Json::Num(n) => {
            out.insert(path, *n);
        }
        Json::Obj(fields) => {
            for (k, v) in fields {
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                walk(v, sub, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                let key = element_key(v).unwrap_or_else(|| i.to_string());
                walk(v, format!("{path}[{key}]"), out);
            }
        }
        _ => {}
    }
}

fn element_key(v: &Json) -> Option<String> {
    let Json::Obj(fields) = v else { return None };
    for (k, v) in fields {
        match (k.as_str(), v) {
            ("name", Json::Str(s)) => return Some(s.clone()),
            ("threads", Json::Num(n)) => return Some(format!("threads{n}")),
            _ => {}
        }
    }
    None
}

/// A metric is time-valued (lower is better) iff some dotted segment ends
/// in `_ns` — e.g. `full_solve_ns`, `workloads[chain].median_ns.chase`,
/// `legs[threads4].median_ns`.
fn is_time_metric(path: &str) -> bool {
    path.split(['.', '[', ']'])
        .any(|seg| seg.ends_with("_ns") && !seg.is_empty())
}

/// Multi-thread legs (`threadsN` with `N != 1`) are machine-shape
/// dependent — on a host with more cores than the baseline machine they
/// drop far below the snapshot, which would let real parallel regressions
/// hide under the headroom, and on a host with fewer they fail spuriously.
/// The gate therefore only compares serial medians; parallel health is
/// asserted separately via `assert-scaling` on the same run's own serial
/// leg.
fn is_machine_shape_dependent(path: &str) -> bool {
    path.split(['.', '[', ']']).any(|seg| {
        seg.strip_prefix("threads")
            .and_then(|n| n.parse::<u64>().ok())
            .is_some_and(|n| n != 1)
    })
}

fn lookup_num(m: &BTreeMap<String, f64>, key: &str) -> Option<f64> {
    m.get(key).copied()
}

// ======================================================================
// Modes
// ======================================================================

fn load_metrics(path: &Path) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let json = parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(metrics(&json))
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn compare(baseline_dir: &Path, current_dir: &Path, tolerance: f64, min_abs_ns: f64) -> ExitCode {
    let mut files: Vec<PathBuf> = match std::fs::read_dir(baseline_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            eprintln!("bench-gate: cannot list {}: {e}", baseline_dir.display());
            return ExitCode::from(2);
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!(
            "bench-gate: no BENCH_*.json baselines under {}",
            baseline_dir.display()
        );
        return ExitCode::from(2);
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    let mut skipped_shape = 0usize;
    for file in files {
        let name = file.file_name().unwrap().to_string_lossy().into_owned();
        let current_path = current_dir.join(&name);
        if !current_path.exists() {
            eprintln!(
                "bench-gate: {name}: missing under {} — skipped",
                current_dir.display()
            );
            continue;
        }
        let (base, cur) = match (load_metrics(&file), load_metrics(&current_path)) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("bench-gate: {e}");
                return ExitCode::from(2);
            }
        };
        println!("== {name} ==");
        skipped_shape += base
            .keys()
            .filter(|p| is_time_metric(p) && is_machine_shape_dependent(p))
            .count();
        for (path, &b) in base
            .iter()
            .filter(|(p, _)| is_time_metric(p) && !is_machine_shape_dependent(p))
        {
            let Some(c) = lookup_num(&cur, path) else {
                eprintln!("   {path}: gone from current run — skipped");
                continue;
            };
            compared += 1;
            let delta = if b > 0.0 { (c - b) / b * 100.0 } else { 0.0 };
            let regressed = c > b * (1.0 + tolerance) && (c - b) > min_abs_ns;
            let marker = if regressed {
                regressions += 1;
                "REGRESSION"
            } else if delta <= -5.0 {
                "improved"
            } else {
                "ok"
            };
            println!(
                "   {path}: {} -> {} ({delta:+.1}%) {marker}",
                fmt_ns(b),
                fmt_ns(c)
            );
        }
    }
    println!(
        "bench-gate: {compared} metrics compared, {regressions} regression(s) \
         (tolerance {:.0}%, floor {})",
        tolerance * 100.0,
        fmt_ns(min_abs_ns)
    );
    println!(
        "bench-gate: skipped {skipped_shape} machine-shape-dependent metric(s) \
         (threadsN legs, N != 1 — asserted via assert-scaling instead)"
    );
    if regressions > 0 {
        eprintln!(
            "bench-gate: FAILED — a metric got >{:.0}% slower than its committed baseline; \
             if the slowdown is intended, refresh the baselines \
             (see crates/bench/README.md)",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn assert_scaling(file: &Path, min: f64) -> ExitCode {
    let m = match load_metrics(file) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench-gate: {e}");
            return ExitCode::from(2);
        }
    };
    let cores = lookup_num(&m, "available_parallelism").unwrap_or(1.0);
    if cores <= 1.0 {
        eprintln!(
            "bench-gate: {}: single-core host recorded — scaling assertion skipped",
            file.display()
        );
        return ExitCode::SUCCESS;
    }
    let best = m
        .iter()
        .filter(|(p, _)| p.ends_with("scaling") || p.ends_with(".scaling"))
        .map(|(_, &v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    if best == f64::NEG_INFINITY {
        eprintln!("bench-gate: {}: no `scaling` metric found", file.display());
        return ExitCode::from(2);
    }
    println!(
        "bench-gate: {}: best scaling {best:.2}x on {cores:.0} cores (floor {min:.2}x)",
        file.display()
    );
    if best > min {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench-gate: FAILED — best scaling {best:.2}x did not exceed {min:.2}x on a \
             {cores:.0}-core host"
        );
        ExitCode::FAILURE
    }
}

// ======================================================================
// CLI
// ======================================================================

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench-gate compare --baseline <dir> --current <dir> \
         [--tolerance 0.25] [--min-abs-ns 100000]\n\
         \x20      bench-gate assert-scaling --file <BENCH_*.json> [--min 1.0]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let Some(mode) = it.next() else {
        return usage();
    };
    let mut flags: BTreeMap<String, String> = BTreeMap::new();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return usage();
        };
        let Some(value) = it.next() else {
            return usage();
        };
        flags.insert(name.to_string(), value.clone());
    }
    let num = |flags: &BTreeMap<String, String>, key: &str, default: f64| -> Option<f64> {
        match flags.get(key) {
            Some(v) => v.parse().ok(),
            None => Some(default),
        }
    };
    match mode.as_str() {
        "compare" => {
            let (Some(baseline), Some(current)) = (flags.get("baseline"), flags.get("current"))
            else {
                return usage();
            };
            let (Some(tolerance), Some(min_abs)) = (
                num(&flags, "tolerance", 0.25),
                num(&flags, "min-abs-ns", 100_000.0),
            ) else {
                return usage();
            };
            compare(Path::new(baseline), Path::new(current), tolerance, min_abs)
        }
        "assert-scaling" => {
            let Some(file) = flags.get("file") else {
                return usage();
            };
            let Some(min) = num(&flags, "min", 1.0) else {
                return usage();
            };
            assert_scaling(Path::new(file), min)
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_flattens_the_bench_dialect() {
        let src = r#"{
            "samples": 30,
            "workloads": [
                {"name": "chain", "median_ns": {"chase": 1500000, "total": 4000000}},
                {"name": "onto", "median_ns": {"chase": 3000000, "total": 9000000}}
            ],
            "legs": [{"threads": 4, "median_ns": 12345, "scaling": 1.62}],
            "note": "free\ntext"
        }"#;
        let m = metrics(&parse_json(src).unwrap());
        assert_eq!(m["samples"], 30.0);
        assert_eq!(m["workloads[chain].median_ns.chase"], 1_500_000.0);
        assert_eq!(m["workloads[onto].median_ns.total"], 9_000_000.0);
        assert_eq!(m["legs[threads4].median_ns"], 12_345.0);
        assert_eq!(m["legs[threads4].scaling"], 1.62);
    }

    #[test]
    fn time_metric_detection() {
        assert!(is_time_metric("full_solve_ns"));
        assert!(is_time_metric("workloads[chain].median_ns.chase"));
        assert!(is_time_metric("legs[threads4].median_ns"));
        assert!(!is_time_metric("samples"));
        assert!(!is_time_metric("legs[threads4].scaling"));
        assert!(!is_time_metric("incremental_speedup"));
        assert!(!is_time_metric("available_parallelism"));
    }

    #[test]
    fn multi_thread_legs_are_not_gated() {
        assert!(is_machine_shape_dependent("legs[threads4].median_ns"));
        assert!(is_machine_shape_dependent("threads[threads2].median_ns"));
        assert!(!is_machine_shape_dependent("legs[threads1].median_ns"));
        assert!(!is_machine_shape_dependent("full_solve_ns"));
        // A workload literally named `threadsafe` must not be excluded.
        assert!(!is_machine_shape_dependent(
            "workloads[threadsafe].median_ns.total"
        ));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
    }
}
