#!/usr/bin/env python3
"""Relative-link checker for the documentation handbook.

Scans ARCHITECTURE.md, everything under docs/, every crate README
(crates/*/src/README.md and crates/*/README.md), and the vendor README
for markdown links `[text](target)`. External links (http/https/mailto)
are skipped; every other target must resolve — after stripping a
`#anchor` suffix — to an existing file or directory relative to the
file containing the link. Exit code 1 lists every broken link.

Run from the repository root: `python3 tools/check_links.py`.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# `[text](target)` — good enough for the hand-written markdown in this
# repo; inline code spans are masked out first so `vec![..](..)`-style
# Rust snippets are not misread as links.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN = re.compile(r"`[^`]*`")
FENCE = re.compile(r"^(```|~~~)")


def doc_files():
    files = [ROOT / "ARCHITECTURE.md"]
    files += sorted((ROOT / "docs").rglob("*.md"))
    files += sorted(ROOT.glob("crates/*/README.md"))
    files += sorted(ROOT.glob("crates/*/src/README.md"))
    files += sorted(ROOT.glob("crates/vendor/README.md"))
    return [f for f in files if f.is_file()]


def links_in(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(CODE_SPAN.sub("", line)):
            yield lineno, match.group(1)


def main() -> int:
    broken = []
    checked = 0
    files = doc_files()
    if not files:
        print("check_links: no documentation files found", file=sys.stderr)
        return 1
    for f in files:
        for lineno, target in links_in(f):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure in-page anchor
                continue
            resolved = (f.parent / path_part).resolve()
            if not resolved.exists():
                broken.append(f"{f.relative_to(ROOT)}:{lineno}: broken link -> {target}")
    for line in broken:
        print(line, file=sys.stderr)
    print(f"check_links: {len(files)} files, {checked} relative links, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
